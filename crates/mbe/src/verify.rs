//! Correctness spine: brute-force reference enumeration and validators.
//!
//! The reference enumerates closed vertex-set pairs directly from the
//! definition, in time exponential in `min(|U|, |V|)` — only usable for
//! small graphs, which is exactly what the randomized cross-check tests
//! and property tests need.

use crate::sink::Biclique;
use bigraph::BipartiteGraph;
use std::collections::BTreeSet;

/// Maximum smaller-side size the brute-force reference accepts.
pub const BRUTE_FORCE_LIMIT: u32 = 22;

/// Enumerates all maximal bicliques (both sides non-empty) by scanning
/// the powerset of the smaller side. Panics if the smaller side exceeds
/// [`BRUTE_FORCE_LIMIT`].
///
/// A pair `(L, R)` is returned iff `L = C(R)`, `R = C(L)`, and both are
/// non-empty — the "closed pair" characterization of maximality.
pub fn brute_force(g: &BipartiteGraph) -> Vec<Biclique> {
    let (h, swapped) = g.canonicalize(); // |U| ≥ |V|, enumerate subsets of V
    let nv = h.num_v();
    assert!(
        nv <= BRUTE_FORCE_LIMIT,
        "brute force is exponential; smaller side {nv} exceeds {BRUTE_FORCE_LIMIT}"
    );
    let mut seen: BTreeSet<Vec<u32>> = BTreeSet::new();
    let mut out = Vec::new();
    let mut l = Vec::new();
    let mut r = Vec::new();
    let mut tmp = Vec::new();
    for mask in 1u64..(1u64 << nv) {
        // S = the subset of V encoded by `mask`.
        // L = C(S): common neighbors of S in U.
        l.clear();
        let mut first = true;
        for v in 0..nv {
            if mask >> v & 1 == 0 {
                continue;
            }
            if first {
                l.extend_from_slice(h.nbr_v(v));
                first = false;
            } else {
                setops::intersect_into(&l, h.nbr_v(v), &mut tmp);
                std::mem::swap(&mut l, &mut tmp);
            }
            if l.is_empty() {
                break;
            }
        }
        if l.is_empty() {
            continue;
        }
        // R = C(L): common neighbors of L in V.
        r.clear();
        r.extend_from_slice(h.nbr_u(l[0]));
        for &u in &l[1..] {
            setops::intersect_into(&r, h.nbr_u(u), &mut tmp);
            std::mem::swap(&mut r, &mut tmp);
        }
        // (L, R) = (C(S), C(C(S))) is always a closed pair: S ⊆ R gives
        // C(R) ⊆ C(S) = L, and L ⊆ C(R) because R = C(L). Every maximal
        // biclique arises this way from S = R, so deduplicating by R
        // yields exactly the maximal biclique set.
        if seen.insert(r.clone()) {
            let b = if swapped {
                Biclique { left: r.clone(), right: l.clone() }
            } else {
                Biclique { left: l.clone(), right: r.clone() }
            };
            out.push(b);
        }
    }
    out.sort();
    out
}

/// `true` iff `(left, right)` is a biclique of `g` (no maximality check).
/// Empty sides are rejected.
pub fn is_biclique(g: &BipartiteGraph, left: &[u32], right: &[u32]) -> bool {
    if left.is_empty() || right.is_empty() {
        return false;
    }
    left.iter().all(|&u| right.iter().all(|&v| g.has_edge(u, v)))
}

/// `true` iff `(left, right)` is a *maximal* biclique of `g`.
pub fn is_maximal_biclique(g: &BipartiteGraph, left: &[u32], right: &[u32]) -> bool {
    if !is_biclique(g, left, right) {
        return false;
    }
    // No u outside L adjacent to all of R…
    let extend_u = (0..g.num_u())
        .filter(|u| !left.contains(u))
        .any(|u| right.iter().all(|&v| g.has_edge(u, v)));
    // …and no v outside R adjacent to all of L.
    let extend_v = (0..g.num_v())
        .filter(|v| !right.contains(v))
        .any(|v| left.iter().all(|&u| g.has_edge(u, v)));
    !extend_u && !extend_v
}

/// Asserts that `got` is exactly the maximal biclique set of `g`
/// (sorted), panicking with a readable diff otherwise. Test helper.
pub fn assert_matches_brute_force(g: &BipartiteGraph, got: &[Biclique]) {
    let want = brute_force(g);
    let mut got_sorted = got.to_vec();
    got_sorted.sort();
    if got_sorted != want {
        let got_set: BTreeSet<_> = got_sorted.iter().collect();
        let want_set: BTreeSet<_> = want.iter().collect();
        let missing: Vec<_> = want_set.difference(&got_set).collect();
        let extra: Vec<_> = got_set.difference(&want_set).collect();
        panic!(
            "biclique sets differ on {g:?}\n missing ({}): {missing:?}\n extra ({}): {extra:?}",
            missing.len(),
            extra.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g0() -> BipartiteGraph {
        BipartiteGraph::from_edges(
            5,
            4,
            &[
                (0, 0),
                (0, 1),
                (0, 2),
                (1, 0),
                (1, 1),
                (1, 2),
                (1, 3),
                (2, 1),
                (3, 1),
                (3, 2),
                (3, 3),
                (4, 3),
            ],
        )
        .unwrap()
    }

    #[test]
    fn brute_force_g0() {
        let all = brute_force(&g0());
        assert_eq!(all.len(), 6);
        for b in &all {
            assert!(is_maximal_biclique(&g0(), &b.left, &b.right));
        }
    }

    #[test]
    fn brute_force_complete() {
        let mut edges = Vec::new();
        for u in 0..3 {
            for v in 0..4 {
                edges.push((u, v));
            }
        }
        let g = BipartiteGraph::from_edges(3, 4, &edges).unwrap();
        let all = brute_force(&g);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].left, [0, 1, 2]);
        assert_eq!(all[0].right, [0, 1, 2, 3]);
    }

    #[test]
    fn brute_force_crown() {
        // Crown graph S(3): u_i adjacent to all v_j except j == i.
        let mut edges = Vec::new();
        for u in 0..3u32 {
            for v in 0..3u32 {
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        let g = BipartiteGraph::from_edges(3, 3, &edges).unwrap();
        let all = brute_force(&g);
        // Maximal bicliques of the 3-crown: {u_i} x (V - v_i) (3 of them)
        // and (U - u_j) x {v_j} (3 more).
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn brute_force_handles_swapped_orientation() {
        // |U| < |V| forces internal canonicalization; sides must come
        // back in the caller's orientation.
        let g =
            BipartiteGraph::from_edges(2, 4, &[(0, 0), (0, 1), (1, 1), (1, 2), (1, 3)]).unwrap();
        let all = brute_force(&g);
        for b in &all {
            assert!(is_maximal_biclique(&g, &b.left, &b.right), "{b:?}");
            assert!(b.left.iter().all(|&u| u < 2));
            assert!(b.right.iter().all(|&v| v < 4));
        }
    }

    #[test]
    fn validators() {
        let g = g0();
        assert!(is_biclique(&g, &[0, 1], &[0, 1, 2]));
        assert!(is_maximal_biclique(&g, &[0, 1], &[0, 1, 2]));
        // Sub-biclique is a biclique but not maximal.
        assert!(is_biclique(&g, &[0], &[0, 1, 2]));
        assert!(!is_maximal_biclique(&g, &[0], &[0, 1, 2]));
        // Not a biclique at all.
        assert!(!is_biclique(&g, &[0, 4], &[0]));
        // Empty sides rejected.
        assert!(!is_biclique(&g, &[], &[0]));
        assert!(!is_maximal_biclique(&g, &[0], &[]));
    }

    #[test]
    fn empty_graph_has_no_bicliques() {
        let g = BipartiteGraph::from_edges(3, 3, &[]).unwrap();
        assert!(brute_force(&g).is_empty());
    }
}
