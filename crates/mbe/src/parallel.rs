//! Work-stealing parallel driver with load-aware task splitting.
//!
//! Root tasks (one per right vertex, see [`crate::task`]) are distributed
//! over a crossbeam work-stealing pool. Real bipartite graphs are
//! power-law skewed, so a handful of root tasks can dominate the runtime;
//! following the load-aware scheme of the parallel MBE literature, a task
//! whose estimated enumeration-tree size `min(|L|,|C|)·|C|` exceeds
//! `opts.split_size` (and whose height bound exceeds `opts.split_height`)
//! is *split*: the worker processes just that node — emitting its biclique
//! — and enqueues each child branch as an independent task. Splitting
//! recurses until estimates fall under the bounds, so no worker is left
//! holding a monolithic subtree while others idle.
//!
//! Every worker owns a private engine (scratch reuse) and a private sink;
//! per-worker sinks and [`Stats`] are returned to the caller for merging.
//!
//! **Stopping.** Workers share one [`ControlState`]: emissions are gated
//! through it (so `max_emitted` budgets are exact even here), and the
//! cancellation flag / deadline are additionally observed in the idle
//! [`Backoff`] loop. Once a stop is recorded, every worker switches to
//! *drain* mode — it keeps popping and discarding queued tasks,
//! decrementing the pending counter, until the pool is empty — so the
//! pending counter always reaches zero and is asserted
//! ([`crate::invariants::check_drained`]) on every run, stopped or not.

use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::checkpoint::ResumeTask;
use crate::metrics::{RunMetrics, Stats, WorkerMetrics};
use crate::obs::{DriverKind, ObsCtx, RecordingSink, SegmentInfo, TaskDelta, TaskInfo, TaskKind};
use crate::run::{ControlState, ControlledSink, MbeError, RunControl, StopReason};
use crate::sink::BicliqueSink;
use crate::task::{record_task, root_representatives, AnyEngine, RootTask, TaskBuilder};
use crate::{Algorithm, MbeOptions};
use bigraph::BipartiteGraph;
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use crossbeam::utils::Backoff;

/// What a contained worker panic looked like: which task poisoned the
/// worker and the (stringified) panic payload.
pub(crate) struct PanicInfo {
    pub(crate) task: String,
    pub(crate) payload: String,
}

/// Everything a parallel run produces: the per-worker sinks, merged
/// stats, stop reason, the captured unexplored frontier (internal ids;
/// empty on completion), and the first contained panic, if any.
pub(crate) struct ParOutcome<S> {
    pub(crate) sinks: Vec<S>,
    pub(crate) stats: Stats,
    pub(crate) stop: StopReason,
    pub(crate) frontier: Vec<ResumeTask>,
    pub(crate) panic: Option<PanicInfo>,
    pub(crate) metrics: RunMetrics,
}

/// A unit of parallel work.
///
/// Roots are shipped as bare vertex ids — the 1-hop/2-hop universe is
/// computed by the worker that picks the task up, so that this heavy part
/// of the preprocessing parallelizes too. Splitting produces explicit
/// [`NodeTask`]s.
enum Task {
    Root(u32),
    Node(NodeTask),
}

/// An unchecked enumeration node shipped between workers.
#[derive(Debug, Clone)]
struct NodeTask {
    /// `L` of the node (already intersected with `N(v)`).
    l: Vec<u32>,
    /// `R` of the parent (the node's own `R` adds `v` and absorptions).
    r_parent: Vec<u32>,
    /// The vertex whose traversal created this node.
    v: u32,
    /// Remaining candidates of the parent.
    p: Vec<u32>,
    /// Excluded vertices relevant to this node.
    q: Vec<u32>,
}

impl NodeTask {
    fn from_root(t: RootTask) -> Self {
        NodeTask { l: t.l0, r_parent: Vec::new(), v: t.v, p: t.p0, q: t.q0 }
    }

    fn est_height(&self) -> usize {
        self.l.len().min(self.p.len())
    }

    fn est_size(&self) -> usize {
        crate::task::est_tree_size(self.est_height(), self.p.len())
    }

    fn should_split(&self, opts: &MbeOptions) -> bool {
        self.est_height() > opts.split_height && self.est_size() > opts.split_size
    }
}

/// Parallel enumeration core used by the [`crate::Enumeration`] builder
/// terminals: runs the configured algorithm over
/// `g` with `opts.threads` workers (0 = all available cores) under
/// `control`. When `resume` is `Some`, the pool is seeded from the
/// checkpointed frontier (internal ids) instead of the root sweep.
/// `make_sink(worker_index)` builds one sink per worker; the sinks, the
/// merged stats, the stop reason, any captured frontier, and the first
/// contained worker panic come back in the [`ParOutcome`].
///
/// Emission *order* is nondeterministic, the emitted *set* is not (and
/// under an emission budget the emitted *count* is exact — the budget is
/// a shared atomic token pool).
///
/// A panicking task is contained by `catch_unwind`: the worker records
/// the first panic, rebuilds its engine, and the pool stops and drains as
/// for any other stop. The panicked task itself is *excluded* from the
/// captured frontier — it may have already emitted part of its subtree,
/// and re-running it could emit duplicates — so a post-panic checkpoint
/// is best-effort, not exhaustive (documented on
/// [`MbeError::WorkerPanic`]).
pub(crate) fn par_run<S, F>(
    g: &BipartiteGraph,
    opts: &MbeOptions,
    control: &RunControl,
    resume: Option<&[ResumeTask]>,
    obs: ObsCtx<'_>,
    make_sink: F,
) -> Result<ParOutcome<S>, MbeError>
where
    S: BicliqueSink + Send,
    F: Fn(usize) -> S + Sync,
{
    let threads = if opts.threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        opts.threads
    };

    let (h, perm) = bigraph::order::apply(g, opts.order);
    let start = std::time::Instant::now();

    let injector: Injector<Task> = Injector::new();
    let pending = AtomicU64::new(0);
    let state = ControlState::with_obs(control, obs);
    let frontier: Mutex<Vec<ResumeTask>> = Mutex::new(Vec::new());
    let panic_slot: Mutex<Option<PanicInfo>> = Mutex::new(None);

    let mut seed_stats = Stats::default();
    match resume {
        Some(tasks) => {
            // Resume seeding: replay the checkpointed frontier verbatim
            // (it was captured after root batching, so no re-filtering).
            for t in tasks {
                pending.fetch_add(1, Ordering::SeqCst);
                injector.push(match t {
                    ResumeTask::Root(v) => Task::Root(*v),
                    // Once per checkpointed task at startup, cold; the
                    // queued task owns its sets.
                    ResumeTask::Node { l, r_parent, v, p, q } => Task::Node(NodeTask {
                        l: l.clone(),               // xtask-allow: hot-alloc-loop (startup resume seeding)
                        r_parent: r_parent.clone(), // xtask-allow: hot-alloc-loop (startup resume seeding)
                        v: *v,
                        p: p.clone(), // xtask-allow: hot-alloc-loop (startup resume seeding)
                        q: q.clone(), // xtask-allow: hot-alloc-loop (startup resume seeding)
                    }),
                });
            }
        }
        None => {
            // Seed with bare root ids (respecting MBET root batching);
            // workers compute the 2-hop universes themselves so this
            // heavy part of the preprocessing scales too.
            let batch_roots = opts.algorithm == Algorithm::Mbet && opts.mbet.batching;
            let reps = if batch_roots { Some(root_representatives(&h)) } else { None };
            for v in 0..h.num_v() {
                if let Some(reps) = &reps {
                    if !reps[v as usize] {
                        seed_stats.batched += 1;
                        continue;
                    }
                }
                if !h.nbr_v(v).is_empty() {
                    pending.fetch_add(1, Ordering::SeqCst);
                    injector.push(Task::Root(v));
                }
            }
        }
    }

    obs.segment_start(&SegmentInfo {
        driver: DriverKind::Parallel,
        workers: threads,
        seeded_tasks: pending.load(Ordering::SeqCst),
        resumed: resume.is_some(),
    });

    let workers: Vec<Worker<Task>> = (0..threads).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<_> = workers.iter().map(|w| w.stealer()).collect();

    let mut results: Vec<Option<(S, Stats, WorkerMetrics)>> = (0..threads).map(|_| None).collect();

    let (spawn_err, panicked) = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        let mut spawn_err: Option<String> = None;
        for (wid, (local, slot)) in workers.into_iter().zip(results.iter_mut()).enumerate() {
            let injector = &injector;
            let stealers = &stealers;
            let pending = &pending;
            let state = &state;
            let h = &h;
            let perm = &perm[..];
            let make_sink = &make_sink;
            let frontier = &frontier;
            let panic_slot = &panic_slot;
            let spawned = scope
                .builder()
                // xtask-allow: hot-alloc-loop (once per worker at spawn)
                .name(format!("mbe-worker-{wid}"))
                .stack_size(64 << 20) // deep R-chains recurse; be generous
                .spawn(move |_| {
                    let mut sink = make_sink(wid);
                    let mut stats = Stats::default();
                    let mut engine = AnyEngine::new(h, opts);
                    let obs_w = obs.for_worker(wid);
                    let mut wm = WorkerMetrics::new(wid);
                    worker_loop(
                        h,
                        perm,
                        opts,
                        &local,
                        injector,
                        stealers,
                        pending,
                        state,
                        &mut engine,
                        &mut sink,
                        &mut stats,
                        frontier,
                        panic_slot,
                        obs_w,
                        &mut wm,
                    );
                    // A worker's delivered count is exactly its stats
                    // delta (engines bump `stats.emitted` only after a
                    // full-chain Continue).
                    wm.emitted = stats.emitted;
                    *slot = Some((sink, stats, wm));
                });
            match spawned {
                Ok(handle) => handles.push(handle),
                Err(e) => {
                    // Stop the already-running workers (they drain the
                    // queue) and surface the failure to the caller.
                    spawn_err = Some(e.to_string()); // xtask-allow: hot-alloc-loop (spawn-failure path, at most once)
                    state.note_stop(StopReason::Cancelled);
                    break;
                }
            }
        }
        let mut panicked = false;
        for hdl in handles {
            if hdl.join().is_err() {
                panicked = true;
            }
        }
        (spawn_err, panicked)
    })
    .expect("scope"); // xtask-allow: expect

    if let Some(msg) = spawn_err {
        return Err(MbeError::Spawn(msg));
    }
    if panicked {
        // Per-task panics are contained by catch_unwind; a join failure
        // means something outside the task loop (sink construction,
        // engine setup) blew up — no partial report is salvageable.
        return Err(MbeError::WorkerPanicked);
    }

    let mut stats = seed_stats;
    let mut sinks = Vec::with_capacity(threads);
    let mut metrics = RunMetrics::default();
    for r in results {
        let Some((s, st, wm)) = r else {
            return Err(MbeError::WorkerPanicked);
        };
        stats.merge(&st);
        metrics.workers.push(wm);
        sinks.push(s);
    }
    let stop = state.reason();
    // Every exit path — completion or drain-after-stop — leaves the
    // pending counter at zero; asserted unconditionally.
    crate::invariants::check_drained(pending.load(Ordering::SeqCst));
    if resume.is_none() {
        // The parallel-vs-serial recount compares against a full serial
        // run; it is meaningless for a resumed segment.
        crate::invariants::check_parallel_run(g, opts, &stats, !stop.is_complete());
    }
    stats.elapsed = start.elapsed();
    obs.segment_end(stop, &stats);
    let frontier = frontier.into_inner().unwrap_or_else(PoisonError::into_inner);
    let panic = panic_slot.into_inner().unwrap_or_else(PoisonError::into_inner);
    Ok(ParOutcome { sinks, stats, stop, frontier, panic, metrics })
}

/// Where a popped task came from — feeds the steal telemetry: only tasks
/// taken from a *peer's* deque count as steals (injector pops are normal
/// distribution, not work stealing).
#[derive(Clone, Copy, PartialEq, Eq)]
enum TaskSource {
    /// The worker's own deque.
    Local,
    /// The shared injector (seeded roots and split children).
    Injector,
    /// Stolen from another worker's deque.
    Peer,
}

/// Pops the next task: local deque first, then the injector, then peers.
/// Retries while any source reports [`Steal::Retry`] (a racing steal), so
/// `None` means every source was *observed empty* — same semantics as the
/// crossbeam `find(!Retry)` idiom this replaces.
fn next_task(
    local: &Worker<Task>,
    injector: &Injector<Task>,
    stealers: &[Stealer<Task>],
) -> Option<(Task, TaskSource)> {
    if let Some(t) = local.pop() {
        return Some((t, TaskSource::Local));
    }
    loop {
        let mut retry = false;
        match injector.steal_batch_and_pop(local) {
            Steal::Success(t) => return Some((t, TaskSource::Injector)),
            Steal::Retry => retry = true,
            Steal::Empty => {}
        }
        for s in stealers {
            match s.steal() {
                Steal::Success(t) => return Some((t, TaskSource::Peer)),
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if !retry {
            return None;
        }
    }
}

/// Post-stop cleanup: pop queued tasks into the shared `frontier`
/// (decrementing the pending counter) until the pool is empty — what used
/// to be discarded is now exactly the checkpointable remainder. Peers
/// still finishing a task may push split children meanwhile; they are
/// drained too, and the loop terminates because in-flight tasks are
/// finite and no new work is started once every worker observes the stop.
fn drain_after_stop(
    local: &Worker<Task>,
    injector: &Injector<Task>,
    stealers: &[Stealer<Task>],
    pending: &AtomicU64,
    frontier: &Mutex<Vec<ResumeTask>>,
) {
    let backoff = Backoff::new();
    loop {
        while let Some((task, _)) = next_task(local, injector, stealers) {
            let captured = match task {
                Task::Root(v) => ResumeTask::Root(v),
                Task::Node(t) => resume_task_of(&t),
            };
            frontier.lock().unwrap_or_else(PoisonError::into_inner).push(captured);
            pending.fetch_sub(1, Ordering::SeqCst);
            backoff.reset();
        }
        if pending.load(Ordering::SeqCst) == 0 {
            return;
        }
        backoff.snooze();
    }
}

/// The resume representation of a queued node task.
fn resume_task_of(t: &NodeTask) -> ResumeTask {
    ResumeTask::Node {
        l: t.l.clone(),
        r_parent: t.r_parent.clone(),
        v: t.v,
        p: t.p.clone(),
        q: t.q.clone(),
    }
}

/// Renders the panic payload `catch_unwind` handed back. Panic messages
/// are almost always `&str` or `String`; anything else is opaque.
fn panic_payload(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A short human-readable description of a task, built only on panic.
fn describe_task(t: &NodeTask) -> String {
    format!("node task v={} |L|={} |P|={} |Q|={}", t.v, t.l.len(), t.p.len(), t.q.len())
}

#[allow(clippy::too_many_arguments)]
fn worker_loop<'g, S: BicliqueSink>(
    h: &'g BipartiteGraph,
    perm: &[u32],
    opts: &MbeOptions,
    local: &Worker<Task>,
    injector: &Injector<Task>,
    stealers: &[Stealer<Task>],
    pending: &AtomicU64,
    state: &ControlState<'_>,
    engine: &mut AnyEngine<'g>,
    sink: &mut S,
    stats: &mut Stats,
    frontier: &Mutex<Vec<ResumeTask>>,
    panic_slot: &Mutex<Option<PanicInfo>>,
    obs: ObsCtx<'_>,
    wm: &mut WorkerMetrics,
) {
    let mut split_buf: Vec<NodeTask> = Vec::new();
    let mut builder = TaskBuilder::new(h);
    let backoff = Backoff::new();
    // Fires `on_idle` once per idle *period* (transition into idleness),
    // not per snooze; `wm.idle_wakeups` counts every snooze.
    let mut idle = false;
    // Record a pre-cancelled / pre-expired control before doing any work.
    state.check_idle();
    loop {
        if state.stopped().is_some() {
            drain_after_stop(local, injector, stealers, pending, frontier);
            return;
        }
        let Some((task, source)) = next_task(local, injector, stealers) else {
            // Injector and every stealer came up empty. Either the pool is
            // done (`pending` drained) or peers are still expanding nodes
            // that may yet split — back off exponentially (spin, then
            // yield) instead of burning a core on a bare yield loop. The
            // idle loop doubles as the passive cancellation/deadline
            // observation point.
            if pending.load(Ordering::SeqCst) == 0 {
                return;
            }
            if !idle {
                idle = true;
                obs.idle();
            }
            wm.idle_wakeups += 1;
            state.check_idle();
            backoff.snooze();
            continue;
        };
        backoff.reset();
        idle = false;
        if source == TaskSource::Peer {
            wm.steals += 1;
            obs.steal();
        }

        // The task's identity for the observer: captured before the root
        // build consumes it (splitting refines Root/Node to Split below).
        let (origin_v, origin_kind) = match &task {
            Task::Root(v) => (*v, TaskKind::Root),
            Task::Node(t) => (t.v, TaskKind::Node),
        };
        let task = match task {
            Task::Node(t) => Some(t),
            Task::Root(v) => builder.build(v).map(NodeTask::from_root),
        };
        let flow = match task {
            None => ControlFlow::Continue(()), // isolated root — nothing to do
            Some(task) => {
                stats.tasks += 1;
                let nodes_before = stats.nodes;
                let emitted_before = stats.emitted;
                let was_split = task.should_split(opts);
                let info = TaskInfo {
                    v: origin_v,
                    kind: if was_split { TaskKind::Split } else { origin_kind },
                };
                obs.task_start(&info);
                let t0 = std::time::Instant::now();
                // Contain per-task panics: a poisoned task must not take
                // the whole pool down. The captured borrows (&mut sink,
                // stats, engine, split_buf) end when the closure returns;
                // the panic arm below rebuilds the engine (its recursion
                // scratch may hold mid-unwind garbage) and clears the
                // split buffer, so nothing poisoned survives the task.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut mapped = crate::sink::map_right(sink, perm);
                    let mut recording = RecordingSink::with_base(&mut mapped, obs, emitted_before);
                    let mut controlled = ControlledSink::new(state, &mut recording);
                    if was_split {
                        split_buf.clear();
                        split_node(h, &task, &mut controlled, stats, &mut split_buf)
                    } else {
                        engine.run_node(
                            &task.l,
                            &task.r_parent,
                            task.v,
                            &task.p,
                            &task.q,
                            &mut controlled,
                            stats,
                        )
                    }
                }));
                let elapsed = t0.elapsed();
                // Split tasks process a single node outside the engine,
                // so their recursion depth is 0 and the engine's depth
                // field is stale — don't read it. Same for a panicked
                // task: mid-unwind engine state is garbage.
                let depth = match &result {
                    Ok(_) if !was_split => engine.task_depth() as u64,
                    _ => 0,
                };
                if result.is_ok() {
                    record_task(wm, depth, engine.peak_trie_nodes() as u64, elapsed);
                }
                // Every task_start pairs with a task_finish, on the
                // panic path too — a dangling start would read as a
                // forever-running task in the trace. A panicked task
                // reports the deltas it accumulated before unwinding.
                obs.task_finish(
                    &info,
                    elapsed,
                    &TaskDelta {
                        nodes: stats.nodes - nodes_before,
                        emitted: stats.emitted - emitted_before,
                        depth,
                    },
                );
                match result {
                    Ok(ControlFlow::Continue(())) => {
                        if was_split {
                            pending.fetch_add(split_buf.len() as u64, Ordering::SeqCst);
                            for child in split_buf.drain(..) {
                                injector.push(Task::Node(child));
                            }
                        }
                        // Task-boundary accounting feeds the node budget.
                        state.note_task(stats.nodes - nodes_before)
                    }
                    Ok(ControlFlow::Break(r)) => {
                        let mut fr = frontier.lock().unwrap_or_else(PoisonError::into_inner);
                        if was_split {
                            // split_node's only break is its single emit,
                            // which happens before any child is built: the
                            // emission was undelivered, so the whole task
                            // re-runs on resume.
                            split_buf.clear();
                            fr.push(resume_task_of(&task));
                        } else {
                            fr.extend(engine.take_frontier());
                        }
                        drop(fr);
                        ControlFlow::Break(r)
                    }
                    Err(payload) => {
                        // The panicked task *was* counted in `stats.tasks`
                        // — mirror that in the worker metrics so the
                        // per-worker task sum still equals the merged
                        // total.
                        record_task(wm, 0, 0, elapsed);
                        let mut slot = panic_slot.lock().unwrap_or_else(PoisonError::into_inner);
                        if slot.is_none() {
                            *slot = Some(PanicInfo {
                                task: describe_task(&task),
                                payload: panic_payload(payload.as_ref()),
                            });
                        }
                        drop(slot);
                        // The panicked task is NOT captured: it may have
                        // partially emitted, and re-running it would risk
                        // duplicates. Rebuild the engine before reuse.
                        *engine = AnyEngine::new(h, opts);
                        split_buf.clear();
                        ControlFlow::Break(StopReason::WorkerPanicked)
                    }
                }
            }
        };
        pending.fetch_sub(1, Ordering::SeqCst);
        if let ControlFlow::Break(r) = flow {
            state.note_stop(r);
            // The loop top switches to drain mode.
        }
    }
}

/// Processes one node — check, absorb, emit — and pushes its children as
/// tasks instead of recursing. Engine-agnostic (MBEA-style scans): split
/// nodes are rare, fan-out dominates their cost. Breaks (pushing no
/// children) iff the sink requested a stop.
fn split_node(
    g: &BipartiteGraph,
    t: &NodeTask,
    sink: &mut dyn BicliqueSink,
    stats: &mut Stats,
    out: &mut Vec<NodeTask>,
) -> ControlFlow<StopReason> {
    stats.nodes += 1;
    if crate::task::covered_by_excluded(g, &t.q, &t.l) {
        stats.nonmaximal += 1;
        return ControlFlow::Continue(());
    }
    // `absorbed` and `p_new` partition `t.p`.
    let mut absorbed = Vec::with_capacity(t.p.len());
    let mut p_new = Vec::with_capacity(t.p.len());
    crate::task::partition_candidates(g, &t.p, &t.l, &mut absorbed, &mut p_new);
    stats.absorbed += absorbed.len() as u64;
    let r_new = crate::task::assemble_r(&t.r_parent, t.v, &absorbed);
    crate::invariants::check_node(g, &t.l, &r_new);
    sink.emit(&t.l, &r_new)?;
    stats.emitted += 1;

    let mut q_now: Vec<u32> = Vec::new();
    crate::task::live_excluded(g, &t.q, &t.l, &mut q_now);
    let mut l_child = Vec::new();
    for i in 0..p_new.len() {
        let w = p_new[i];
        crate::task::child_l(g, &t.l, w, &mut l_child);
        // Each child task is shipped through the injector and outlives
        // this frame — it must own its sets. Split nodes are rare
        // (fan-out dominates), so the copies are off the hot path.
        out.push(NodeTask {
            l: l_child.clone(),      // xtask-allow: hot-alloc-loop (owned by the child task)
            r_parent: r_new.clone(), // xtask-allow: hot-alloc-loop (owned by the child task)
            v: w,
            // xtask-allow: hot-alloc-loop (owned by the child task)
            p: p_new[i + 1..].to_vec(),
            q: q_now.clone(), // xtask-allow: hot-alloc-loop (owned by the child task)
        });
        q_now.push(w);
    }
    ControlFlow::Continue(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CountSink;
    use crate::Enumeration;

    fn g0() -> BipartiteGraph {
        BipartiteGraph::from_edges(
            5,
            4,
            &[
                (0, 0),
                (0, 1),
                (0, 2),
                (1, 0),
                (1, 1),
                (1, 2),
                (1, 3),
                (2, 1),
                (3, 1),
                (3, 2),
                (3, 3),
                (4, 3),
            ],
        )
        .unwrap()
    }

    #[test]
    fn parallel_matches_serial_on_g0() {
        let g = g0();
        for alg in Algorithm::all() {
            let opts = MbeOptions::new(alg).threads(3);
            let mut par = Enumeration::new(&g).options(opts.clone()).collect().unwrap().bicliques;
            par.sort();
            let mut ser =
                Enumeration::new(&g).options(opts.threads(1)).collect().unwrap().bicliques;
            ser.sort();
            assert_eq!(par, ser, "{alg:?}");
            assert_eq!(par.len(), 6);
        }
    }

    #[test]
    fn forced_splitting_is_correct() {
        let g = g0();
        // Absurdly low bounds force every splittable node to split.
        let mut opts = MbeOptions::new(Algorithm::Mbet).threads(2);
        opts.split_height = 0;
        opts.split_size = 0;
        let report = Enumeration::new(&g).options(opts).collect().unwrap();
        let mut par = report.bicliques;
        par.sort();
        crate::verify::assert_matches_brute_force(&g, &par);
        assert_eq!(report.stats.emitted, 6);
    }

    #[test]
    fn single_worker_parallel_matches() {
        let g = g0();
        let opts = MbeOptions::new(Algorithm::Imbea).threads(1);
        let (sinks, report) =
            Enumeration::new(&g).options(opts).run_per_worker(|_| CountSink::default()).unwrap();
        let count: u64 = sinks.iter().map(|s| s.count()).sum();
        assert_eq!(count, 6);
        assert!(report.is_complete());
    }

    #[test]
    fn empty_graph_parallel() {
        let g = BipartiteGraph::from_edges(4, 4, &[]).unwrap();
        let report =
            Enumeration::new(&g).options(MbeOptions::new(Algorithm::Mbet).threads(2)).count();
        let report = report.unwrap();
        assert_eq!(report.count(), 0);
        assert!(report.is_complete());
    }

    #[test]
    fn parallel_emit_budget_is_exact() {
        let g = g0();
        for threads in [2, 4] {
            let report = Enumeration::new(&g)
                .options(MbeOptions::new(Algorithm::Mbet).threads(threads))
                .max_bicliques(3)
                .collect()
                .unwrap();
            assert_eq!(report.stop, StopReason::EmitBudget, "threads={threads}");
            assert_eq!(report.bicliques.len(), 3, "threads={threads}");
        }
    }

    #[test]
    fn parallel_pre_cancelled_emits_nothing() {
        let g = g0();
        let control = RunControl::new();
        control.cancel();
        let report = Enumeration::new(&g)
            .options(MbeOptions::new(Algorithm::Mbet).threads(3))
            .control(control)
            .collect()
            .unwrap();
        assert_eq!(report.stop, StopReason::Cancelled);
        assert!(report.bicliques.is_empty());
    }

    fn node(l: usize, p: usize) -> NodeTask {
        NodeTask {
            l: (0..l as u32).collect(),
            r_parent: Vec::new(),
            v: 0,
            p: (0..p as u32).collect(),
            q: Vec::new(),
        }
    }

    fn thresholds(split_height: usize, split_size: usize) -> MbeOptions {
        let mut opts = MbeOptions::new(Algorithm::Mbet);
        opts.split_height = split_height;
        opts.split_size = split_size;
        opts
    }

    #[test]
    fn est_size_uses_saturating_product() {
        // 5 candidates, |L| = 3 ⇒ height 3, size 15; both via the shared
        // saturating helper (whose usize::MAX behavior is unit-tested in
        // `task`).
        let t = node(3, 5);
        assert_eq!(t.est_height(), 3);
        assert_eq!(t.est_size(), 15);
    }

    #[test]
    fn should_split_boundaries() {
        let t = node(5, 10); // est_height = 5, est_size = 50

        // Zero thresholds: any task with a non-trivial estimate splits.
        assert!(t.should_split(&thresholds(0, 0)));
        // Comparisons are strict: estimates equal to a threshold don't split.
        assert!(!t.should_split(&thresholds(5, 0)));
        assert!(!t.should_split(&thresholds(0, 50)));
        assert!(t.should_split(&thresholds(4, 49)));
        // usize::MAX thresholds can never be exceeded (est_size saturates
        // at usize::MAX, and `>` is strict), so splitting is fully off.
        assert!(!t.should_split(&thresholds(usize::MAX, 0)));
        assert!(!t.should_split(&thresholds(0, usize::MAX)));
        assert!(!t.should_split(&thresholds(usize::MAX, usize::MAX)));

        // A task with no candidates estimates zero and never splits, even
        // at zero thresholds.
        let leaf = node(5, 0);
        assert_eq!(leaf.est_size(), 0);
        assert!(!leaf.should_split(&thresholds(0, 0)));
    }
}
