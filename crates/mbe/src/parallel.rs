//! Work-stealing parallel driver with load-aware task splitting.
//!
//! Root tasks (one per right vertex, see [`crate::task`]) are distributed
//! over a crossbeam work-stealing pool. Real bipartite graphs are
//! power-law skewed, so a handful of root tasks can dominate the runtime;
//! following the load-aware scheme of the parallel MBE literature, a task
//! whose estimated enumeration-tree size `min(|L|,|C|)·|C|` exceeds
//! `opts.split_size` (and whose height bound exceeds `opts.split_height`)
//! is *split*: the worker processes just that node — emitting its biclique
//! — and enqueues each child branch as an independent task. Splitting
//! recurses until estimates fall under the bounds, so no worker is left
//! holding a monolithic subtree while others idle.
//!
//! Every worker owns a private engine (scratch reuse) and a private sink;
//! per-worker sinks and [`Stats`] are returned to the caller for merging.
//!
//! **Stopping.** Workers share one [`ControlState`]: emissions are gated
//! through it (so `max_emitted` budgets are exact even here), and the
//! cancellation flag / deadline are additionally observed in the idle
//! [`Backoff`] loop. Once a stop is recorded, every worker switches to
//! *drain* mode — it keeps popping and discarding queued tasks,
//! decrementing the pending counter, until the pool is empty — so the
//! pending counter always reaches zero and is asserted
//! ([`crate::invariants::check_drained`]) on every run, stopped or not.

use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::metrics::Stats;
use crate::run::{ControlState, ControlledSink, MbeError, RunControl, StopReason};
use crate::sink::{Biclique, BicliqueSink, CollectSink, CountSink};
use crate::task::{root_representatives, AnyEngine, RootTask, TaskBuilder};
use crate::{Algorithm, MbeOptions};
use bigraph::BipartiteGraph;
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use crossbeam::utils::Backoff;

/// A unit of parallel work.
///
/// Roots are shipped as bare vertex ids — the 1-hop/2-hop universe is
/// computed by the worker that picks the task up, so that this heavy part
/// of the preprocessing parallelizes too. Splitting produces explicit
/// [`NodeTask`]s.
enum Task {
    Root(u32),
    Node(NodeTask),
}

/// An unchecked enumeration node shipped between workers.
#[derive(Debug, Clone)]
struct NodeTask {
    /// `L` of the node (already intersected with `N(v)`).
    l: Vec<u32>,
    /// `R` of the parent (the node's own `R` adds `v` and absorptions).
    r_parent: Vec<u32>,
    /// The vertex whose traversal created this node.
    v: u32,
    /// Remaining candidates of the parent.
    p: Vec<u32>,
    /// Excluded vertices relevant to this node.
    q: Vec<u32>,
}

impl NodeTask {
    fn from_root(t: RootTask) -> Self {
        NodeTask { l: t.l0, r_parent: Vec::new(), v: t.v, p: t.p0, q: t.q0 }
    }

    fn est_height(&self) -> usize {
        self.l.len().min(self.p.len())
    }

    fn est_size(&self) -> usize {
        crate::task::est_tree_size(self.est_height(), self.p.len())
    }

    fn should_split(&self, opts: &MbeOptions) -> bool {
        self.est_height() > opts.split_height && self.est_size() > opts.split_size
    }
}

/// Parallel enumeration core used by the [`crate::Enumeration`] builder
/// terminals and the deprecated shims: runs the configured algorithm over
/// `g` with `opts.threads` workers (0 = all available cores) under
/// `control`. `make_sink(worker_index)` builds one sink per worker; the
/// sinks, the merged stats, and the stop reason are returned.
///
/// Emission *order* is nondeterministic, the emitted *set* is not (and
/// under an emission budget the emitted *count* is exact — the budget is
/// a shared atomic token pool).
pub(crate) fn par_run<S, F>(
    g: &BipartiteGraph,
    opts: &MbeOptions,
    control: &RunControl,
    make_sink: F,
) -> Result<(Vec<S>, Stats, StopReason), MbeError>
where
    S: BicliqueSink + Send,
    F: Fn(usize) -> S + Sync,
{
    let threads = if opts.threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        opts.threads
    };

    let (h, perm) = bigraph::order::apply(g, opts.order);
    let start = std::time::Instant::now();

    let injector: Injector<Task> = Injector::new();
    let pending = AtomicU64::new(0);
    let state = ControlState::new(control);

    // Seed with bare root ids (respecting MBET root batching); workers
    // compute the 2-hop universes themselves so preprocessing scales too.
    let batch_roots = opts.algorithm == Algorithm::Mbet && opts.mbet.batching;
    let reps = if batch_roots { Some(root_representatives(&h)) } else { None };
    let mut seed_stats = Stats::default();
    for v in 0..h.num_v() {
        if let Some(reps) = &reps {
            if !reps[v as usize] {
                seed_stats.batched += 1;
                continue;
            }
        }
        if !h.nbr_v(v).is_empty() {
            pending.fetch_add(1, Ordering::SeqCst);
            injector.push(Task::Root(v));
        }
    }

    let workers: Vec<Worker<Task>> = (0..threads).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<_> = workers.iter().map(|w| w.stealer()).collect();

    let mut results: Vec<Option<(S, Stats)>> = (0..threads).map(|_| None).collect();

    let (spawn_err, panicked) = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut spawn_err: Option<String> = None;
        for (wid, (local, slot)) in workers.into_iter().zip(results.iter_mut()).enumerate() {
            let injector = &injector;
            let stealers = &stealers;
            let pending = &pending;
            let state = &state;
            let h = &h;
            let perm = &perm[..];
            let make_sink = &make_sink;
            let spawned = scope
                .builder()
                .name(format!("mbe-worker-{wid}"))
                .stack_size(64 << 20) // deep R-chains recurse; be generous
                .spawn(move |_| {
                    let mut sink = make_sink(wid);
                    let mut stats = Stats::default();
                    let mut engine = AnyEngine::new(h, opts);
                    worker_loop(
                        h,
                        perm,
                        opts,
                        &local,
                        injector,
                        stealers,
                        pending,
                        state,
                        &mut engine,
                        &mut sink,
                        &mut stats,
                    );
                    *slot = Some((sink, stats));
                });
            match spawned {
                Ok(handle) => handles.push(handle),
                Err(e) => {
                    // Stop the already-running workers (they drain the
                    // queue) and surface the failure to the caller.
                    spawn_err = Some(e.to_string());
                    state.note_stop(StopReason::Cancelled);
                    break;
                }
            }
        }
        let mut panicked = false;
        for hdl in handles {
            if hdl.join().is_err() {
                panicked = true;
            }
        }
        (spawn_err, panicked)
    })
    .expect("scope"); // xtask-allow: expect

    if let Some(msg) = spawn_err {
        return Err(MbeError::Spawn(msg));
    }
    if panicked {
        return Err(MbeError::WorkerPanicked);
    }

    let mut stats = seed_stats;
    let mut sinks = Vec::with_capacity(threads);
    for r in results {
        let Some((s, st)) = r else {
            return Err(MbeError::WorkerPanicked);
        };
        stats.merge(&st);
        sinks.push(s);
    }
    let stop = state.reason();
    // Every exit path — completion or drain-after-stop — leaves the
    // pending counter at zero; asserted unconditionally.
    crate::invariants::check_drained(pending.load(Ordering::SeqCst));
    crate::invariants::check_parallel_run(g, opts, &stats, !stop.is_complete());
    stats.elapsed = start.elapsed();
    Ok((sinks, stats, stop))
}

/// Pops the next task: local deque first, then the injector, then peers.
fn next_task(
    local: &Worker<Task>,
    injector: &Injector<Task>,
    stealers: &[Stealer<Task>],
) -> Option<Task> {
    local.pop().or_else(|| {
        std::iter::repeat_with(|| {
            injector
                .steal_batch_and_pop(local)
                .or_else(|| stealers.iter().map(|s| s.steal()).collect())
        })
        .find(|s| !matches!(s, Steal::Retry))
        .and_then(|s| s.success())
    })
}

/// Post-stop cleanup: pop and discard queued tasks (decrementing the
/// pending counter) until the pool is empty. Peers still finishing a task
/// may push split children meanwhile; they are drained too, and the loop
/// terminates because in-flight tasks are finite and no new work is
/// started once every worker observes the stop.
fn drain_after_stop(
    local: &Worker<Task>,
    injector: &Injector<Task>,
    stealers: &[Stealer<Task>],
    pending: &AtomicU64,
) {
    let backoff = Backoff::new();
    loop {
        while next_task(local, injector, stealers).is_some() {
            pending.fetch_sub(1, Ordering::SeqCst);
            backoff.reset();
        }
        if pending.load(Ordering::SeqCst) == 0 {
            return;
        }
        backoff.snooze();
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop<S: BicliqueSink>(
    h: &BipartiteGraph,
    perm: &[u32],
    opts: &MbeOptions,
    local: &Worker<Task>,
    injector: &Injector<Task>,
    stealers: &[Stealer<Task>],
    pending: &AtomicU64,
    state: &ControlState<'_>,
    engine: &mut AnyEngine<'_>,
    sink: &mut S,
    stats: &mut Stats,
) {
    let mut split_buf: Vec<NodeTask> = Vec::new();
    let mut builder = TaskBuilder::new(h);
    let backoff = Backoff::new();
    // Record a pre-cancelled / pre-expired control before doing any work.
    state.check_idle();
    loop {
        if state.stopped().is_some() {
            drain_after_stop(local, injector, stealers, pending);
            return;
        }
        let Some(task) = next_task(local, injector, stealers) else {
            // Injector and every stealer came up empty. Either the pool is
            // done (`pending` drained) or peers are still expanding nodes
            // that may yet split — back off exponentially (spin, then
            // yield) instead of burning a core on a bare yield loop. The
            // idle loop doubles as the passive cancellation/deadline
            // observation point.
            if pending.load(Ordering::SeqCst) == 0 {
                return;
            }
            state.check_idle();
            backoff.snooze();
            continue;
        };
        backoff.reset();

        let task = match task {
            Task::Node(t) => Some(t),
            Task::Root(v) => builder.build(v).map(NodeTask::from_root),
        };
        let flow = match task {
            None => ControlFlow::Continue(()), // isolated root — nothing to do
            Some(task) => {
                stats.tasks += 1;
                let nodes_before = stats.nodes;
                let mut mapped = crate::sink::map_right(sink, perm);
                let mut controlled = ControlledSink::new(state, &mut mapped);
                let flow = if task.should_split(opts) {
                    split_buf.clear();
                    let f = split_node(h, &task, &mut controlled, stats, &mut split_buf);
                    pending.fetch_add(split_buf.len() as u64, Ordering::SeqCst);
                    for child in split_buf.drain(..) {
                        injector.push(Task::Node(child));
                    }
                    f
                } else {
                    engine.run_node(
                        &task.l,
                        &task.r_parent,
                        task.v,
                        &task.p,
                        &task.q,
                        &mut controlled,
                        stats,
                    )
                };
                match flow {
                    // Task-boundary accounting feeds the node budget.
                    ControlFlow::Continue(()) => state.note_task(stats.nodes - nodes_before),
                    brk => brk,
                }
            }
        };
        pending.fetch_sub(1, Ordering::SeqCst);
        if let ControlFlow::Break(r) = flow {
            state.note_stop(r);
            // The loop top switches to drain mode.
        }
    }
}

/// Processes one node — check, absorb, emit — and pushes its children as
/// tasks instead of recursing. Engine-agnostic (MBEA-style scans): split
/// nodes are rare, fan-out dominates their cost. Breaks (pushing no
/// children) iff the sink requested a stop.
fn split_node(
    g: &BipartiteGraph,
    t: &NodeTask,
    sink: &mut dyn BicliqueSink,
    stats: &mut Stats,
    out: &mut Vec<NodeTask>,
) -> ControlFlow<StopReason> {
    stats.nodes += 1;
    for &q in &t.q {
        if setops::is_subset(&t.l, g.nbr_v(q)) {
            stats.nonmaximal += 1;
            return ControlFlow::Continue(());
        }
    }
    let mut absorbed = Vec::new();
    let mut p_new = Vec::new();
    for &w in &t.p {
        let common = setops::intersect_count(&t.l, g.nbr_v(w));
        if common == t.l.len() {
            absorbed.push(w);
        } else if common > 0 {
            p_new.push(w);
        }
    }
    stats.absorbed += absorbed.len() as u64;
    let mut r_new = Vec::with_capacity(t.r_parent.len() + 1 + absorbed.len());
    r_new.extend_from_slice(&t.r_parent);
    r_new.push(t.v);
    r_new.extend_from_slice(&absorbed);
    r_new.sort_unstable();
    crate::invariants::check_node(g, &t.l, &r_new);
    sink.emit(&t.l, &r_new)?;
    stats.emitted += 1;

    let q_base: Vec<u32> =
        t.q.iter()
            .copied()
            .filter(|&q| setops::intersect_first(g.nbr_v(q), &t.l).is_some())
            .collect();
    let mut q_now = q_base;
    let mut l_child = Vec::new();
    for i in 0..p_new.len() {
        let w = p_new[i];
        setops::intersect_into(&t.l, g.nbr_v(w), &mut l_child);
        out.push(NodeTask {
            l: l_child.clone(),
            r_parent: r_new.clone(),
            v: w,
            p: p_new[i + 1..].to_vec(),
            q: q_now.clone(),
        });
        q_now.push(w);
    }
    ControlFlow::Continue(())
}

/// Runs the configured algorithm over `g` with `opts.threads` workers
/// (0 = all available cores). `make_sink(worker_index)` builds one sink
/// per worker; the sinks and the merged stats are returned.
///
/// Emission *order* is nondeterministic, the emitted *set* is not.
#[deprecated(note = "use Enumeration::new(g).options(opts).run_per_worker(make_sink)")]
pub fn par_enumerate_with<S, F>(
    g: &BipartiteGraph,
    opts: &MbeOptions,
    make_sink: F,
) -> (Vec<S>, Stats)
// xtask-allow: tuple-return
where
    S: BicliqueSink + Send,
    F: Fn(usize) -> S + Sync,
{
    match par_run(g, opts, &RunControl::new(), make_sink) {
        Ok((sinks, stats, _stop)) => (sinks, stats),
        // Preserves the old API's panic-on-failure behavior; the new
        // builder returns these as errors. xtask-allow: panic
        Err(e) => panic!("parallel enumeration failed: {e}"),
    }
}

/// Parallel collection of all maximal bicliques (unsorted).
#[deprecated(note = "use Enumeration::new(g).options(opts).collect()")]
// xtask-allow: tuple-return
pub fn par_collect_bicliques(g: &BipartiteGraph, opts: &MbeOptions) -> (Vec<Biclique>, Stats) {
    match par_run(g, opts, &RunControl::new(), |_| CollectSink::new()) {
        Ok((sinks, stats, _stop)) => {
            let mut all = Vec::new();
            for s in sinks {
                all.extend(s.into_vec());
            }
            (all, stats)
        }
        // Preserves the old API's panic-on-failure behavior. xtask-allow: panic
        Err(e) => panic!("parallel enumeration failed: {e}"),
    }
}

/// Parallel count of maximal bicliques.
#[deprecated(note = "use Enumeration::new(g).options(opts).count()")]
// xtask-allow: tuple-return
pub fn par_count_bicliques(g: &BipartiteGraph, opts: &MbeOptions) -> (u64, Stats) {
    match par_run(g, opts, &RunControl::new(), |_| CountSink::default()) {
        Ok((sinks, stats, _stop)) => (sinks.iter().map(|s| s.count()).sum(), stats),
        // Preserves the old API's panic-on-failure behavior. xtask-allow: panic
        Err(e) => panic!("parallel enumeration failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Enumeration;

    fn g0() -> BipartiteGraph {
        BipartiteGraph::from_edges(
            5,
            4,
            &[
                (0, 0),
                (0, 1),
                (0, 2),
                (1, 0),
                (1, 1),
                (1, 2),
                (1, 3),
                (2, 1),
                (3, 1),
                (3, 2),
                (3, 3),
                (4, 3),
            ],
        )
        .unwrap()
    }

    #[test]
    fn parallel_matches_serial_on_g0() {
        let g = g0();
        for alg in Algorithm::all() {
            let opts = MbeOptions::new(alg).threads(3);
            let mut par = Enumeration::new(&g).options(opts.clone()).collect().unwrap().bicliques;
            par.sort();
            let mut ser =
                Enumeration::new(&g).options(opts.threads(1)).collect().unwrap().bicliques;
            ser.sort();
            assert_eq!(par, ser, "{alg:?}");
            assert_eq!(par.len(), 6);
        }
    }

    #[test]
    fn forced_splitting_is_correct() {
        let g = g0();
        // Absurdly low bounds force every splittable node to split.
        let mut opts = MbeOptions::new(Algorithm::Mbet).threads(2);
        opts.split_height = 0;
        opts.split_size = 0;
        let report = Enumeration::new(&g).options(opts).collect().unwrap();
        let mut par = report.bicliques;
        par.sort();
        crate::verify::assert_matches_brute_force(&g, &par);
        assert_eq!(report.stats.emitted, 6);
    }

    #[test]
    fn single_worker_parallel_matches() {
        let g = g0();
        let opts = MbeOptions::new(Algorithm::Imbea).threads(1);
        let (sinks, report) =
            Enumeration::new(&g).options(opts).run_per_worker(|_| CountSink::default()).unwrap();
        let count: u64 = sinks.iter().map(|s| s.count()).sum();
        assert_eq!(count, 6);
        assert!(report.is_complete());
    }

    #[test]
    fn empty_graph_parallel() {
        let g = BipartiteGraph::from_edges(4, 4, &[]).unwrap();
        let report =
            Enumeration::new(&g).options(MbeOptions::new(Algorithm::Mbet).threads(2)).count();
        let report = report.unwrap();
        assert_eq!(report.count(), 0);
        assert!(report.is_complete());
    }

    #[test]
    fn deprecated_par_shims_still_work() {
        let g = g0();
        let opts = MbeOptions::new(Algorithm::Mbet).threads(2);
        #[allow(deprecated)]
        let (bicliques, _) = par_collect_bicliques(&g, &opts);
        assert_eq!(bicliques.len(), 6);
        #[allow(deprecated)]
        let (count, _) = par_count_bicliques(&g, &opts);
        assert_eq!(count, 6);
    }

    #[test]
    fn parallel_emit_budget_is_exact() {
        let g = g0();
        for threads in [2, 4] {
            let report = Enumeration::new(&g)
                .options(MbeOptions::new(Algorithm::Mbet).threads(threads))
                .max_bicliques(3)
                .collect()
                .unwrap();
            assert_eq!(report.stop, StopReason::EmitBudget, "threads={threads}");
            assert_eq!(report.bicliques.len(), 3, "threads={threads}");
        }
    }

    #[test]
    fn parallel_pre_cancelled_emits_nothing() {
        let g = g0();
        let control = RunControl::new();
        control.cancel();
        let report = Enumeration::new(&g)
            .options(MbeOptions::new(Algorithm::Mbet).threads(3))
            .control(control)
            .collect()
            .unwrap();
        assert_eq!(report.stop, StopReason::Cancelled);
        assert!(report.bicliques.is_empty());
    }

    fn node(l: usize, p: usize) -> NodeTask {
        NodeTask {
            l: (0..l as u32).collect(),
            r_parent: Vec::new(),
            v: 0,
            p: (0..p as u32).collect(),
            q: Vec::new(),
        }
    }

    fn thresholds(split_height: usize, split_size: usize) -> MbeOptions {
        let mut opts = MbeOptions::new(Algorithm::Mbet);
        opts.split_height = split_height;
        opts.split_size = split_size;
        opts
    }

    #[test]
    fn est_size_uses_saturating_product() {
        // 5 candidates, |L| = 3 ⇒ height 3, size 15; both via the shared
        // saturating helper (whose usize::MAX behavior is unit-tested in
        // `task`).
        let t = node(3, 5);
        assert_eq!(t.est_height(), 3);
        assert_eq!(t.est_size(), 15);
    }

    #[test]
    fn should_split_boundaries() {
        let t = node(5, 10); // est_height = 5, est_size = 50

        // Zero thresholds: any task with a non-trivial estimate splits.
        assert!(t.should_split(&thresholds(0, 0)));
        // Comparisons are strict: estimates equal to a threshold don't split.
        assert!(!t.should_split(&thresholds(5, 0)));
        assert!(!t.should_split(&thresholds(0, 50)));
        assert!(t.should_split(&thresholds(4, 49)));
        // usize::MAX thresholds can never be exceeded (est_size saturates
        // at usize::MAX, and `>` is strict), so splitting is fully off.
        assert!(!t.should_split(&thresholds(usize::MAX, 0)));
        assert!(!t.should_split(&thresholds(0, usize::MAX)));
        assert!(!t.should_split(&thresholds(usize::MAX, usize::MAX)));

        // A task with no candidates estimates zero and never splits, even
        // at zero thresholds.
        let leaf = node(5, 0);
        assert_eq!(leaf.est_size(), 0);
        assert!(!leaf.should_split(&thresholds(0, 0)));
    }
}
