//! Enumeration counters.
//!
//! These counters regenerate the analysis columns of the paper-style
//! experiments: the ratio of non-maximal to maximal nodes (E3), the
//! batching savings of the prefix tree (E4), and per-task load figures
//! (E8). They are plain integers threaded through the engines by `&mut`,
//! so measuring costs nothing beyond the increments themselves.

use std::time::Duration;

use crate::histogram::Histogram;

/// Counters accumulated over one enumeration run.
///
/// On a *stopped* run (cancelled, deadline, or over budget — see
/// [`crate::StopReason`]) the counters describe the partial work actually
/// performed, and cross-counter identities such as `nodes = emitted +
/// nonmaximal` need not close: a stop can land between a node expansion
/// and its emission.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Enumeration nodes expanded (branches actually recursed into).
    pub nodes: u64,
    /// Maximal bicliques emitted (α in the papers' tables).
    pub emitted: u64,
    /// Branches discarded by the maximality check (δ in the papers'
    /// tables; the reported ratio is `nonmaximal / emitted`).
    pub nonmaximal: u64,
    /// Candidates skipped because an equivalent representative was already
    /// expanded (MBET batching only).
    pub batched: u64,
    /// Candidates absorbed into `R'` without branching.
    pub absorbed: u64,
    /// Root tasks processed.
    pub tasks: u64,
    /// Branches cut by size/bound pruning (filtered and extremal search
    /// only; always 0 for plain enumeration).
    pub bound_pruned: u64,
    /// Wall-clock time of the run (set by the entry points).
    pub elapsed: Duration,
}

impl Stats {
    /// `δ/α`: generated non-maximal branches per maximal biclique. The
    /// pruning-effectiveness metric of experiment E3.
    pub fn nonmaximal_ratio(&self) -> f64 {
        if self.emitted == 0 {
            0.0
        } else {
            self.nonmaximal as f64 / self.emitted as f64
        }
    }

    /// Merges another run's counters into this one (used by the parallel
    /// driver; `elapsed` takes the max since threads run concurrently).
    pub fn merge(&mut self, other: &Stats) {
        self.nodes += other.nodes;
        self.emitted += other.emitted;
        self.nonmaximal += other.nonmaximal;
        self.batched += other.batched;
        self.absorbed += other.absorbed;
        self.tasks += other.tasks;
        self.bound_pruned += other.bound_pruned;
        self.elapsed = self.elapsed.max(other.elapsed);
    }
}

/// Telemetry one worker accumulated over a run (serial runs have exactly
/// one; the parallel driver keeps one per worker thread).
///
/// `emitted` counts *delivered* emissions only, so
/// `RunMetrics::total_emitted` always equals `Stats::emitted` for the
/// same run segment.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerMetrics {
    /// This worker's index (0-based; 0 for serial runs).
    pub worker: usize,
    /// Tasks this worker executed (root, node, and split tasks alike).
    pub tasks: u64,
    /// Tasks obtained by stealing from a peer worker's deque (always 0
    /// for serial runs; injector batch refills are not steals).
    pub steals: u64,
    /// Times the worker woke from its idle backoff loop to re-check for
    /// work (always 0 for serial runs).
    pub idle_wakeups: u64,
    /// Maximal bicliques this worker delivered to the sink.
    pub emitted: u64,
    /// Deepest enumeration recursion any of this worker's tasks reached.
    pub peak_depth: u64,
    /// Peak live prefix-tree nodes across this worker's tasks (MBET
    /// engines only; 0 for baselines).
    pub peak_trie_nodes: u64,
    /// Task wall-clock latency distribution, in microseconds.
    pub task_latency_us: Histogram,
    /// Per-task enumeration depth distribution.
    pub depth: Histogram,
}

impl WorkerMetrics {
    /// An empty counter set labeled with this worker's index.
    pub fn new(worker: usize) -> Self {
        WorkerMetrics { worker, ..Default::default() }
    }
}

/// Per-worker telemetry for a whole run, carried on
/// [`crate::Report::metrics`].
///
/// Resumed runs append segments: each driver invocation contributes its
/// worker set, so a serial run resumed on 4 threads yields 1 + 4
/// entries. The merged totals below fold the segments together
/// (histograms add bucket-wise, peaks take the max). The shape of this
/// struct is part of the versioned telemetry surface documented in
/// DESIGN.md §8.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunMetrics {
    /// One entry per worker per driver segment, in segment order.
    pub workers: Vec<WorkerMetrics>,
}

impl RunMetrics {
    /// Wraps a single worker's counters (the serial driver's shape).
    pub fn from_single(wm: WorkerMetrics) -> Self {
        RunMetrics { workers: vec![wm] }
    }

    /// Appends another run segment's workers (used on resume).
    pub fn merge(&mut self, other: &RunMetrics) {
        self.workers.extend(other.workers.iter().cloned());
    }

    /// Total tasks executed across workers.
    pub fn total_tasks(&self) -> u64 {
        self.workers.iter().map(|w| w.tasks).sum()
    }

    /// Total successful steals across workers.
    pub fn total_steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// Total idle wakeups across workers.
    pub fn total_idle_wakeups(&self) -> u64 {
        self.workers.iter().map(|w| w.idle_wakeups).sum()
    }

    /// Total delivered emissions across workers; equals
    /// [`Stats::emitted`] for the same run.
    pub fn total_emitted(&self) -> u64 {
        self.workers.iter().map(|w| w.emitted).sum()
    }

    /// Deepest recursion reached by any worker.
    pub fn peak_depth(&self) -> u64 {
        self.workers.iter().map(|w| w.peak_depth).max().unwrap_or(0)
    }

    /// Task latency distribution merged across workers (microseconds).
    pub fn task_latency_us(&self) -> Histogram {
        let mut h = Histogram::new();
        for w in &self.workers {
            h.merge(&w.task_latency_us);
        }
        h
    }

    /// Per-task depth distribution merged across workers.
    pub fn depth(&self) -> Histogram {
        let mut h = Histogram::new();
        for w in &self.workers {
            h.merge(&w.depth);
        }
        h
    }
}

/// Counters of the service-layer result cache
/// ([`crate::service::ResultCache`]), surfaced by the `STATS` verb of the
/// query service.
///
/// `hits`/`misses`/`insertions`/`evictions` are monotone totals since the
/// cache was created; `bytes_used` is a gauge of the current retained
/// size and `bytes_evicted` the monotone total of bytes reclaimed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (whether or not a result was later inserted).
    pub misses: u64,
    /// Entries stored (replacements of an existing key count too).
    pub insertions: u64,
    /// Entries removed to make room under the byte budget.
    pub evictions: u64,
    /// Approximate bytes currently retained (gauge, not a total).
    pub bytes_used: u64,
    /// Approximate bytes reclaimed by evictions so far.
    pub bytes_evicted: u64,
}

impl CacheCounters {
    /// Fraction of lookups served from the cache (`0.0` before any
    /// lookup).
    pub fn hit_ratio(&self) -> f64 {
        let lookups = self.hits.saturating_add(self.misses);
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_counters_hit_ratio() {
        assert_eq!(CacheCounters::default().hit_ratio(), 0.0);
        let c = CacheCounters { hits: 3, misses: 1, ..Default::default() };
        assert!((c.hit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ratio_handles_zero_emissions() {
        assert_eq!(Stats::default().nonmaximal_ratio(), 0.0);
        let s = Stats { emitted: 4, nonmaximal: 6, ..Default::default() };
        assert!((s.nonmaximal_ratio() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = Stats {
            nodes: 1,
            emitted: 2,
            nonmaximal: 3,
            batched: 4,
            absorbed: 5,
            tasks: 6,
            bound_pruned: 7,
            elapsed: Duration::from_millis(10),
        };
        let b = Stats {
            nodes: 10,
            emitted: 20,
            nonmaximal: 30,
            batched: 40,
            absorbed: 50,
            tasks: 60,
            bound_pruned: 70,
            elapsed: Duration::from_millis(5),
        };
        a.merge(&b);
        assert_eq!(a.nodes, 11);
        assert_eq!(a.emitted, 22);
        assert_eq!(a.nonmaximal, 33);
        assert_eq!(a.batched, 44);
        assert_eq!(a.absorbed, 55);
        assert_eq!(a.tasks, 66);
        assert_eq!(a.bound_pruned, 77);
        assert_eq!(a.elapsed, Duration::from_millis(10));
    }

    #[test]
    fn run_metrics_totals_and_merge() {
        let mut w0 = WorkerMetrics::new(0);
        w0.tasks = 3;
        w0.steals = 1;
        w0.idle_wakeups = 2;
        w0.emitted = 10;
        w0.peak_depth = 4;
        w0.task_latency_us.record(100);
        w0.depth.record(4);
        let mut w1 = WorkerMetrics::new(1);
        w1.tasks = 2;
        w1.emitted = 5;
        w1.peak_depth = 7;
        w1.task_latency_us.record(3);
        w1.depth.record(7);

        let mut m = RunMetrics::from_single(w0);
        m.merge(&RunMetrics::from_single(w1));
        assert_eq!(m.workers.len(), 2);
        assert_eq!(m.total_tasks(), 5);
        assert_eq!(m.total_steals(), 1);
        assert_eq!(m.total_idle_wakeups(), 2);
        assert_eq!(m.total_emitted(), 15);
        assert_eq!(m.peak_depth(), 7);
        assert_eq!(m.task_latency_us().count(), 2);
        assert_eq!(m.depth().max_bucket_lower_bound(), Some(4));
        assert_eq!(RunMetrics::default().peak_depth(), 0);
    }
}
