//! Enumeration counters.
//!
//! These counters regenerate the analysis columns of the paper-style
//! experiments: the ratio of non-maximal to maximal nodes (E3), the
//! batching savings of the prefix tree (E4), and per-task load figures
//! (E8). They are plain integers threaded through the engines by `&mut`,
//! so measuring costs nothing beyond the increments themselves.

use std::time::Duration;

/// Counters accumulated over one enumeration run.
///
/// On a *stopped* run (cancelled, deadline, or over budget — see
/// [`crate::StopReason`]) the counters describe the partial work actually
/// performed, and cross-counter identities such as `nodes = emitted +
/// nonmaximal` need not close: a stop can land between a node expansion
/// and its emission.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Enumeration nodes expanded (branches actually recursed into).
    pub nodes: u64,
    /// Maximal bicliques emitted (α in the papers' tables).
    pub emitted: u64,
    /// Branches discarded by the maximality check (δ in the papers'
    /// tables; the reported ratio is `nonmaximal / emitted`).
    pub nonmaximal: u64,
    /// Candidates skipped because an equivalent representative was already
    /// expanded (MBET batching only).
    pub batched: u64,
    /// Candidates absorbed into `R'` without branching.
    pub absorbed: u64,
    /// Root tasks processed.
    pub tasks: u64,
    /// Branches cut by size/bound pruning (filtered and extremal search
    /// only; always 0 for plain enumeration).
    pub bound_pruned: u64,
    /// Wall-clock time of the run (set by the entry points).
    pub elapsed: Duration,
}

impl Stats {
    /// `δ/α`: generated non-maximal branches per maximal biclique. The
    /// pruning-effectiveness metric of experiment E3.
    pub fn nonmaximal_ratio(&self) -> f64 {
        if self.emitted == 0 {
            0.0
        } else {
            self.nonmaximal as f64 / self.emitted as f64
        }
    }

    /// Merges another run's counters into this one (used by the parallel
    /// driver; `elapsed` takes the max since threads run concurrently).
    pub fn merge(&mut self, other: &Stats) {
        self.nodes += other.nodes;
        self.emitted += other.emitted;
        self.nonmaximal += other.nonmaximal;
        self.batched += other.batched;
        self.absorbed += other.absorbed;
        self.tasks += other.tasks;
        self.bound_pruned += other.bound_pruned;
        self.elapsed = self.elapsed.max(other.elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_handles_zero_emissions() {
        assert_eq!(Stats::default().nonmaximal_ratio(), 0.0);
        let s = Stats { emitted: 4, nonmaximal: 6, ..Default::default() };
        assert!((s.nonmaximal_ratio() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = Stats {
            nodes: 1,
            emitted: 2,
            nonmaximal: 3,
            batched: 4,
            absorbed: 5,
            tasks: 6,
            bound_pruned: 7,
            elapsed: Duration::from_millis(10),
        };
        let b = Stats {
            nodes: 10,
            emitted: 20,
            nonmaximal: 30,
            batched: 40,
            absorbed: 50,
            tasks: 60,
            bound_pruned: 70,
            elapsed: Duration::from_millis(5),
        };
        a.merge(&b);
        assert_eq!(a.nodes, 11);
        assert_eq!(a.emitted, 22);
        assert_eq!(a.nonmaximal, 33);
        assert_eq!(a.batched, 44);
        assert_eq!(a.absorbed, 55);
        assert_eq!(a.tasks, 66);
        assert_eq!(a.bound_pruned, 77);
        assert_eq!(a.elapsed, Duration::from_millis(10));
    }
}
