//! Root-task decomposition.
//!
//! Every algorithm in this crate decomposes the global enumeration — a DFS
//! from the implicit root node `(U, ∅, V, ∅)` — into one **root task** per
//! right vertex `v`: the subtree obtained by traversing `v` first. The
//! task's universe is the 1-hop/2-hop neighborhood of `v`:
//!
//! * `l0 = N(v)` — the left side of every biclique in the subtree;
//! * `p0 = {w ∈ N²(v) : w > v}` — untraversed candidates;
//! * `q0 = {w ∈ N²(v) : w < v}` — already-traversed (excluded) vertices.
//!
//! Tasks are independent, which is what the parallel driver exploits; the
//! serial driver just runs them in order.

use std::ops::ControlFlow;

use crate::baseline::BaselineEngine;
use crate::checkpoint::ResumeTask;
use crate::mbet::MbetEngine;
use crate::metrics::{Stats, WorkerMetrics};
use crate::obs::{DriverKind, ObsCtx, RecordingSink, SegmentInfo, TaskInfo, TaskKind};
use crate::run::{ControlState, ControlledSink, RunControl, StopReason};
use crate::sink::BicliqueSink;
use crate::{Algorithm, MbeOptions};
use bigraph::two_hop::TwoHop;
use bigraph::{BipartiteGraph, LocalGraph};
use setops::SetView;

/// One per-root-vertex unit of enumeration work.
#[derive(Debug, Clone)]
pub struct RootTask {
    /// The root right vertex.
    pub v: u32,
    /// `N(v)` — the initial `L`.
    pub l0: Vec<u32>,
    /// Untraversed 2-hop candidates (`> v`).
    pub p0: Vec<u32>,
    /// Traversed 2-hop vertices (`< v`).
    pub q0: Vec<u32>,
}

impl RootTask {
    /// Estimated enumeration-tree height, `min(|L|, |C|)` — the bound the
    /// load-aware splitter compares against `split_height`.
    pub fn est_height(&self) -> usize {
        self.l0.len().min(self.p0.len())
    }

    /// Estimated enumeration-tree size, `min(|L|, |C|) · |C|` — compared
    /// against `split_size`.
    pub fn est_size(&self) -> usize {
        est_tree_size(self.est_height(), self.p0.len())
    }
}

/// Saturating `height · candidates` size estimate shared by [`RootTask`]
/// and the parallel driver's node tasks: the product clamps at
/// `usize::MAX` instead of overflowing on adversarial degree
/// distributions, so splitting decisions stay monotone in both inputs.
pub(crate) fn est_tree_size(height: usize, candidates: usize) -> usize {
    height.saturating_mul(candidates)
}

/// Builds root tasks over one graph with reusable scratch space.
pub struct TaskBuilder<'g> {
    g: &'g BipartiteGraph,
    two_hop: TwoHop,
    buf: Vec<u32>,
}

impl<'g> TaskBuilder<'g> {
    /// A builder for `g`.
    pub fn new(g: &'g BipartiteGraph) -> Self {
        TaskBuilder { g, two_hop: TwoHop::new(g.num_v() as usize), buf: Vec::new() }
    }

    /// The task rooted at `v`, or `None` if `v` is isolated (an isolated
    /// vertex belongs to no biclique with a non-empty left side).
    pub fn build(&mut self, v: u32) -> Option<RootTask> {
        let l0 = self.g.nbr_v(v);
        if l0.is_empty() {
            return None;
        }
        self.two_hop.of_v(self.g, v, &mut self.buf);
        let split = self.buf.partition_point(|&w| w < v);
        Some(RootTask {
            v,
            l0: l0.to_vec(),
            q0: self.buf[..split].to_vec(),
            p0: self.buf[split..].to_vec(),
        })
    }
}

/// Anything that can hand out a [`SetView`] of a right vertex's
/// neighborhood (restricted to the current universe).
///
/// This is the seam between the engines and the graph representation:
/// the baselines read global adjacency straight off the
/// [`BipartiteGraph`] CSR, while the localized MBET engine reads
/// per-root [`LocalGraph`] rows (which may be bitmap-packed). The
/// shared expansion helpers below are written against this trait, so
/// every engine runs the same candidate/exclusion logic regardless of
/// representation.
pub trait NbrSource {
    /// The neighborhood of right vertex `w`, as a view chosen to be
    /// cheap to probe with a sorted operand of length `probe_len`.
    fn nbr(&self, w: u32, probe_len: usize) -> SetView<'_>;
}

impl NbrSource for BipartiteGraph {
    fn nbr(&self, w: u32, _probe_len: usize) -> SetView<'_> {
        SetView::Sorted(self.nbr_v(w))
    }
}

impl NbrSource for LocalGraph {
    fn nbr(&self, w: u32, probe_len: usize) -> SetView<'_> {
        self.row_view(w, probe_len)
    }
}

/// `true` iff some excluded vertex of `traversed` is adjacent to all of
/// `l_new` — the standard Q-based non-maximality prune (`L' ⊆ N(q)`),
/// fatal for the node and all its descendants.
pub(crate) fn covered_by_excluded<N: NbrSource + ?Sized>(
    n: &N,
    traversed: &[u32],
    l_new: &[u32],
) -> bool {
    traversed.iter().any(|&q| n.nbr(q, l_new.len()).contains_all(l_new))
}

/// One pass over `untraversed` splitting it by local degree against
/// `l_new`: full coverage → `absorbed` (joins `R'`), partial overlap →
/// `p_new` (stays a candidate), empty overlap → dropped. Outputs are
/// cleared first and keep the input's relative order.
pub(crate) fn partition_candidates<N: NbrSource + ?Sized>(
    n: &N,
    untraversed: &[u32],
    l_new: &[u32],
    absorbed: &mut Vec<u32>,
    p_new: &mut Vec<u32>,
) {
    absorbed.clear();
    p_new.clear();
    for &w in untraversed {
        let common = n.nbr(w, l_new.len()).intersect_count(l_new);
        if common == l_new.len() {
            absorbed.push(w);
        } else if common > 0 {
            p_new.push(w);
        }
    }
}

/// `R' = r_parent ∪ {v} ∪ absorbed`, sorted — the one allocation per
/// emitted biclique that must outlive the recursion.
pub(crate) fn assemble_r(r_parent: &[u32], v: u32, absorbed: &[u32]) -> Vec<u32> {
    let mut r_new: Vec<u32> = Vec::with_capacity(r_parent.len() + 1 + absorbed.len());
    r_new.extend_from_slice(r_parent);
    r_new.push(v);
    r_new.extend_from_slice(absorbed);
    r_new.sort_unstable();
    r_new
}

/// The excluded vertices still relevant below this node: those sharing
/// at least one neighbor with `l_new` (first-occurrence early-exit
/// test). Preserves order; `out` is cleared first.
pub(crate) fn live_excluded<N: NbrSource + ?Sized>(
    n: &N,
    traversed: &[u32],
    l_new: &[u32],
    out: &mut Vec<u32>,
) {
    out.clear();
    out.extend(
        traversed
            .iter()
            .copied()
            .filter(|&q| n.nbr(q, l_new.len()).intersect_first(l_new).is_some()),
    );
}

/// The child's `L`: `l_new ∩ N(w)`, strictly increasing, into `out`
/// (cleared first).
pub(crate) fn child_l<N: NbrSource + ?Sized>(n: &N, l_new: &[u32], w: u32, out: &mut Vec<u32>) {
    n.nbr(w, l_new.len()).intersect_into(l_new, out);
}

/// Root-level equivalence classes: `reps[v]` is `true` iff `v` is the
/// smallest vertex among those with exactly its neighborhood.
///
/// Enumeration only needs to run root tasks for representatives: if
/// `N(w) = N(v)` with `v < w`, every maximal biclique containing `w`
/// contains `v` too, so none is rooted at `w`. This is the root-level
/// instance of MBET's equivalence batching.
pub fn root_representatives(g: &BipartiteGraph) -> Vec<bool> {
    let nv = g.num_v() as usize;
    let mut order: Vec<u32> = (0..nv as u32).collect();
    order.sort_by(|&a, &b| g.nbr_v(a).cmp(g.nbr_v(b)).then(a.cmp(&b)));
    let mut reps = vec![true; nv];
    for pair in order.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if g.nbr_v(a) == g.nbr_v(b) {
            // Same class; sorted tie-break puts the smaller id first.
            reps[b as usize] = false;
        }
    }
    reps
}

/// Runs every root task in id order on the configured engine.
pub struct SerialDriver<'g> {
    g: &'g BipartiteGraph,
    opts: MbeOptions,
}

impl<'g> SerialDriver<'g> {
    /// A driver for `g` with `opts` (graph must already be ordered).
    pub fn new(g: &'g BipartiteGraph, opts: &MbeOptions) -> Self {
        SerialDriver { g, opts: opts.clone() }
    }

    /// Runs all root tasks into `sink` under `control`, accumulating
    /// `stats`. Returns why the run ended: [`StopReason::Completed`] for
    /// a full run, or the first stop recorded by the control plane / the
    /// sink (a stopped run leaves the in-flight node's counters open, so
    /// the `nodes = emitted + nonmaximal` identity only holds when
    /// complete).
    pub fn run_all<S: BicliqueSink>(
        &mut self,
        sink: &mut S,
        stats: &mut Stats,
        control: &RunControl,
    ) -> StopReason {
        let mut frontier = Vec::new();
        let mut wm = WorkerMetrics::new(0);
        self.run_all_capturing(sink, stats, control, &mut frontier, ObsCtx::noop(), &mut wm)
    }

    /// [`run_all`](SerialDriver::run_all), additionally capturing the
    /// unexplored frontier into `frontier` when the run stops early (the
    /// in-flight engine's untraversed subtrees plus every not-yet-started
    /// root task, in internal (ordered) ids; empty on a completed run),
    /// firing the `obs` hooks, and accumulating per-worker telemetry
    /// into `wm`.
    pub(crate) fn run_all_capturing<S: BicliqueSink>(
        &mut self,
        sink: &mut S,
        stats: &mut Stats,
        control: &RunControl,
        frontier: &mut Vec<ResumeTask>,
        obs: ObsCtx<'_>,
        wm: &mut WorkerMetrics,
    ) -> StopReason {
        let emitted0 = stats.emitted;
        let stop = self.run_all_inner(sink, stats, control, frontier, obs, wm);
        wm.emitted += stats.emitted - emitted0;
        obs.segment_end(stop, stats);
        stop
    }

    /// Body of [`run_all_capturing`](SerialDriver::run_all_capturing)
    /// (split out so the wrapper can settle `wm.emitted` on every early
    /// return path at once).
    fn run_all_inner<S: BicliqueSink>(
        &mut self,
        sink: &mut S,
        stats: &mut Stats,
        control: &RunControl,
        frontier: &mut Vec<ResumeTask>,
        obs: ObsCtx<'_>,
        wm: &mut WorkerMetrics,
    ) -> StopReason {
        let g = self.g;
        let state = ControlState::with_obs(control, obs);
        let mut recording = RecordingSink::with_base(sink, obs, stats.emitted);
        let mut controlled = ControlledSink::new(&state, &mut recording);
        // Root-level batching: only MBET with batching enabled skips
        // equivalent roots (the baselines process every vertex, as in
        // their papers).
        let batch_roots = self.opts.algorithm == Algorithm::Mbet && self.opts.mbet.batching;
        let reps = if batch_roots { Some(root_representatives(g)) } else { None };
        if obs.enabled() {
            // The seed count is only computed when someone is listening.
            let seeded = (0..g.num_v())
                .filter(|&v| {
                    reps.as_deref().is_none_or(|r| r[v as usize]) && !g.nbr_v(v).is_empty()
                })
                .count() as u64;
            obs.segment_start(&SegmentInfo {
                driver: DriverKind::Serial,
                workers: 1,
                seeded_tasks: seeded,
                resumed: false,
            });
        }
        if let ControlFlow::Break(r) = state.note_task(0) {
            // Cancelled or expired before any work: the whole run is the
            // frontier.
            capture_remaining_roots(g, reps.as_deref(), 0, frontier);
            return r;
        }

        let mut builder = TaskBuilder::new(g);
        let mut engine = AnyEngine::new(g, &self.opts);
        for v in 0..g.num_v() {
            if let Some(reps) = &reps {
                if !reps[v as usize] {
                    stats.batched += 1;
                    continue;
                }
            }
            if let Some(task) = builder.build(v) {
                stats.tasks += 1;
                let info = TaskInfo { v, kind: TaskKind::Root };
                obs.task_start(&info);
                let nodes_before = stats.nodes;
                let emitted_before = stats.emitted;
                let t0 = std::time::Instant::now();
                let flow = engine.run_task(&task, &mut controlled, stats);
                let elapsed = t0.elapsed();
                let depth = engine.task_depth() as u64;
                record_task(wm, depth, engine.peak_trie_nodes() as u64, elapsed);
                obs.task_finish(
                    &info,
                    elapsed,
                    &crate::obs::TaskDelta {
                        nodes: stats.nodes - nodes_before,
                        emitted: stats.emitted - emitted_before,
                        depth,
                    },
                );
                if let ControlFlow::Break(r) = flow {
                    frontier.append(&mut engine.take_frontier());
                    capture_remaining_roots(g, reps.as_deref(), v + 1, frontier);
                    return state.note_stop(r);
                }
                if let ControlFlow::Break(r) = state.note_task(stats.nodes - nodes_before) {
                    capture_remaining_roots(g, reps.as_deref(), v + 1, frontier);
                    return r;
                }
            }
        }
        StopReason::Completed
    }

    /// Replays a checkpointed `tasks` frontier instead of the full root
    /// sweep; each task's subtree is enumerated exactly as the original
    /// run would have. Stops capture the still-unexplored remainder into
    /// `frontier`, so resumed runs can themselves be checkpointed.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_frontier<S: BicliqueSink>(
        &mut self,
        tasks: &[ResumeTask],
        sink: &mut S,
        stats: &mut Stats,
        control: &RunControl,
        frontier: &mut Vec<ResumeTask>,
        obs: ObsCtx<'_>,
        wm: &mut WorkerMetrics,
    ) -> StopReason {
        let emitted0 = stats.emitted;
        let stop = self.run_frontier_inner(tasks, sink, stats, control, frontier, obs, wm);
        wm.emitted += stats.emitted - emitted0;
        obs.segment_end(stop, stats);
        stop
    }

    /// Body of [`run_frontier`](SerialDriver::run_frontier), split out so
    /// the wrapper can settle `wm.emitted` on every return path at once.
    #[allow(clippy::too_many_arguments)]
    fn run_frontier_inner<S: BicliqueSink>(
        &mut self,
        tasks: &[ResumeTask],
        sink: &mut S,
        stats: &mut Stats,
        control: &RunControl,
        frontier: &mut Vec<ResumeTask>,
        obs: ObsCtx<'_>,
        wm: &mut WorkerMetrics,
    ) -> StopReason {
        let g = self.g;
        let state = ControlState::with_obs(control, obs);
        let mut recording = RecordingSink::with_base(sink, obs, stats.emitted);
        let mut controlled = ControlledSink::new(&state, &mut recording);
        obs.segment_start(&SegmentInfo {
            driver: DriverKind::Serial,
            workers: 1,
            seeded_tasks: tasks.len() as u64,
            resumed: true,
        });
        if let ControlFlow::Break(r) = state.note_task(0) {
            frontier.extend(tasks.iter().cloned());
            return r;
        }
        let mut builder = TaskBuilder::new(g);
        let mut engine = AnyEngine::new(g, &self.opts);
        for (i, task) in tasks.iter().enumerate() {
            let nodes_before = stats.nodes;
            let emitted_before = stats.emitted;
            let info = match task {
                ResumeTask::Root(v) => TaskInfo { v: *v, kind: TaskKind::Root },
                ResumeTask::Node { v, .. } => TaskInfo { v: *v, kind: TaskKind::Node },
            };
            let mut ran = true;
            let t0 = std::time::Instant::now();
            let flow = match task {
                ResumeTask::Root(v) => match builder.build(*v) {
                    Some(root) => {
                        stats.tasks += 1;
                        obs.task_start(&info);
                        engine.run_task(&root, &mut controlled, stats)
                    }
                    None => {
                        ran = false; // isolated root — nothing to do
                        ControlFlow::Continue(())
                    }
                },
                ResumeTask::Node { l, r_parent, v, p, q } => {
                    stats.tasks += 1;
                    obs.task_start(&info);
                    engine.run_node(l, r_parent, *v, p, q, &mut controlled, stats)
                }
            };
            if ran {
                let elapsed = t0.elapsed();
                let depth = engine.task_depth() as u64;
                record_task(wm, depth, engine.peak_trie_nodes() as u64, elapsed);
                obs.task_finish(
                    &info,
                    elapsed,
                    &crate::obs::TaskDelta {
                        nodes: stats.nodes - nodes_before,
                        emitted: stats.emitted - emitted_before,
                        depth,
                    },
                );
            }
            if let ControlFlow::Break(r) = flow {
                frontier.append(&mut engine.take_frontier());
                frontier.extend(tasks[i + 1..].iter().cloned());
                return state.note_stop(r);
            }
            if let ControlFlow::Break(r) = state.note_task(stats.nodes - nodes_before) {
                frontier.extend(tasks[i + 1..].iter().cloned());
                return r;
            }
        }
        StopReason::Completed
    }
}

/// Folds one finished task into the worker's telemetry: latency and
/// depth histograms plus the running peaks.
pub(crate) fn record_task(
    wm: &mut WorkerMetrics,
    depth: u64,
    peak_trie_nodes: u64,
    elapsed: std::time::Duration,
) {
    wm.tasks += 1;
    wm.task_latency_us.record(elapsed.as_micros().min(u64::MAX as u128) as u64);
    wm.depth.record(depth);
    wm.peak_depth = wm.peak_depth.max(depth);
    wm.peak_trie_nodes = wm.peak_trie_nodes.max(peak_trie_nodes);
}

/// Pushes every root task at `from..` that would still run (representative
/// under root batching, non-isolated) as a [`ResumeTask::Root`].
pub(crate) fn capture_remaining_roots(
    g: &BipartiteGraph,
    reps: Option<&[bool]>,
    from: u32,
    frontier: &mut Vec<ResumeTask>,
) {
    for v in from..g.num_v() {
        if reps.is_none_or(|r| r[v as usize]) && !g.nbr_v(v).is_empty() {
            frontier.push(ResumeTask::Root(v));
        }
    }
}

/// Engine dispatch shared by the serial and parallel drivers. Constructed
/// once per worker so scratch pools are reused across tasks.
pub(crate) enum AnyEngine<'g> {
    Baseline(BaselineEngine<'g>),
    // Boxed: the MBET engine embeds the localization buffers, making it
    // much larger than the baseline variant. One box per worker.
    Mbet(Box<MbetEngine<'g>>),
}

impl<'g> AnyEngine<'g> {
    pub(crate) fn new(g: &'g BipartiteGraph, opts: &MbeOptions) -> Self {
        match opts.algorithm {
            Algorithm::Mbet => {
                AnyEngine::Mbet(Box::new(MbetEngine::new(g, opts.mbet, opts.kernel)))
            }
            alg => AnyEngine::Baseline(BaselineEngine::new(g, alg)),
        }
    }

    pub(crate) fn run_task(
        &mut self,
        task: &RootTask,
        sink: &mut dyn BicliqueSink,
        stats: &mut Stats,
    ) -> ControlFlow<StopReason> {
        match self {
            AnyEngine::Baseline(e) => e.run_task(task, sink, stats),
            AnyEngine::Mbet(e) => e.run_task(task, sink, stats),
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_node(
        &mut self,
        l: &[u32],
        r_parent: &[u32],
        v: u32,
        p: &[u32],
        q: &[u32],
        sink: &mut dyn BicliqueSink,
        stats: &mut Stats,
    ) -> ControlFlow<StopReason> {
        match self {
            AnyEngine::Baseline(e) => e.run_node(l, r_parent, v, p, q, sink, stats),
            AnyEngine::Mbet(e) => e.run_node(l, r_parent, v, p, q, sink, stats),
        }
    }

    /// Takes the frontier the engine captured while breaking out of its
    /// last `run_task`/`run_node` call (empty unless that call broke).
    pub(crate) fn take_frontier(&mut self) -> Vec<ResumeTask> {
        match self {
            AnyEngine::Baseline(e) => e.take_frontier(),
            AnyEngine::Mbet(e) => e.take_frontier(),
        }
    }

    /// Deepest recursion the last `run_task`/`run_node` call reached.
    pub(crate) fn task_depth(&self) -> usize {
        match self {
            AnyEngine::Baseline(e) => e.task_depth(),
            AnyEngine::Mbet(e) => e.task_depth(),
        }
    }

    /// Peak live prefix-tree nodes across the engine's lifetime (MBET
    /// only; baselines have no trie and report 0).
    pub(crate) fn peak_trie_nodes(&self) -> usize {
        match self {
            AnyEngine::Baseline(_) => 0,
            AnyEngine::Mbet(e) => e.peak_trie_nodes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g0() -> BipartiteGraph {
        BipartiteGraph::from_edges(
            5,
            4,
            &[
                (0, 0),
                (0, 1),
                (0, 2),
                (1, 0),
                (1, 1),
                (1, 2),
                (1, 3),
                (2, 1),
                (3, 1),
                (3, 2),
                (3, 3),
                (4, 3),
            ],
        )
        .unwrap()
    }

    #[test]
    fn task_shape_on_g0() {
        let g = g0();
        let mut b = TaskBuilder::new(&g);
        let t = b.build(0).unwrap(); // v1
        assert_eq!(t.l0, [0, 1]); // N(v1) = {u1, u2}
        assert!(t.q0.is_empty());
        assert_eq!(t.p0, [1, 2, 3]); // N²(v1) = {v2, v3, v4}
        let t = b.build(3).unwrap(); // v4: N² = {v1, v2, v3}, all < 3
        assert_eq!(t.q0, [0, 1, 2]);
        assert!(t.p0.is_empty());
        assert_eq!(t.est_height(), 0);
    }

    #[test]
    fn isolated_roots_skipped() {
        let g = BipartiteGraph::from_edges(2, 3, &[(0, 0), (1, 2)]).unwrap();
        let mut b = TaskBuilder::new(&g);
        assert!(b.build(1).is_none());
        assert!(b.build(0).is_some());
    }

    #[test]
    fn estimates() {
        let t = RootTask { v: 0, l0: vec![1, 2, 3], p0: vec![4, 5], q0: vec![] };
        assert_eq!(t.est_height(), 2);
        assert_eq!(t.est_size(), 4);
    }

    #[test]
    fn est_tree_size_saturates_at_usize_max() {
        assert_eq!(est_tree_size(usize::MAX, 2), usize::MAX);
        assert_eq!(est_tree_size(2, usize::MAX), usize::MAX);
        assert_eq!(est_tree_size(usize::MAX, usize::MAX), usize::MAX);
        assert_eq!(est_tree_size(usize::MAX, 1), usize::MAX);
        assert_eq!(est_tree_size(usize::MAX, 0), 0);
        assert_eq!(est_tree_size(0, usize::MAX), 0);
    }

    #[test]
    fn representatives_group_identical_neighborhoods() {
        // v0 and v2 have N = {0}; v1 has N = {0,1}; v3 has N = {0}.
        let g =
            BipartiteGraph::from_edges(2, 4, &[(0, 0), (0, 1), (1, 1), (0, 2), (0, 3)]).unwrap();
        let reps = root_representatives(&g);
        assert_eq!(reps, vec![true, true, false, false]);
    }

    #[test]
    fn representatives_all_distinct() {
        let g = g0();
        assert!(root_representatives(&g).iter().all(|&r| r));
    }
}
