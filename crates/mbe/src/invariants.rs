//! Runtime invariant verifier, compiled in by the `debug-invariants`
//! cargo feature.
//!
//! The enumeration engines lean on structural invariants that ordinary
//! unit tests only probe pointwise: every node's `L` is the exact common
//! neighborhood of its `R'`, trie keys are strictly increasing local-id
//! subsets of their node's `L`, every per-root localization relabels
//! consistently (sorted id maps, rows matching the global intersections,
//! bitmap rows decoding to their sorted rows), the `Scratch` arenas hand
//! out non-overlapping spans,
//! the counter identity `nodes = emitted + nonmaximal` closes for every
//! engine, the parallel driver drains its `pending` ledger and emits
//! exactly the serial count, and a stopped (cancelled / budgeted /
//! expired) run's collected output is a duplicate-free subset of the
//! complete run's. With the feature enabled, each of those is
//! asserted *during* every run — on every node, every key, every drain.
//! Without it, every function here is an empty `#[inline(always)]` stub
//! and the hot paths compile exactly as before.
//!
//! Run the full suite under the verifier with:
//!
//! ```text
//! cargo test -p mbe --features debug-invariants
//! ```
//!
//! The checks deliberately trade speed for strength (the per-node `L`
//! re-derivation is `O(Σ_{r∈R'} deg(r))`, and every parallel run is
//! re-counted serially); the feature is a correctness instrument, never a
//! production default.

use crate::metrics::Stats;
use bigraph::BipartiteGraph;

/// `true` iff the verifier is compiled in.
pub const ENABLED: bool = cfg!(feature = "debug-invariants");

/// Asserts the defining node invariant at an emission point: `l` is
/// non-empty, strictly increasing (sorted + deduped), and equals the
/// common neighborhood `∩_{r ∈ r_new} N(r)` of the node's `R'`.
#[cfg(feature = "debug-invariants")]
pub fn check_node(g: &BipartiteGraph, l: &[u32], r_new: &[u32]) {
    assert!(!l.is_empty(), "invariant: node emitted with empty L");
    assert!(setops::is_strictly_increasing(l), "invariant: L not sorted/deduped: {l:?}");
    assert!(setops::is_strictly_increasing(r_new), "invariant: R' not sorted/deduped: {r_new:?}");
    let (&r0, rest) = r_new.split_first().expect("R' contains at least the traversed vertex");
    let mut acc: Vec<u32> = g.nbr_v(r0).to_vec();
    let mut tmp = Vec::new();
    for &r in rest {
        setops::intersect_into(&acc, g.nbr_v(r), &mut tmp);
        std::mem::swap(&mut acc, &mut tmp);
    }
    assert_eq!(acc, l, "invariant: L is not the common neighborhood of R' (R' = {r_new:?})");
}

/// No-op stub (enable `debug-invariants` for the real check).
#[cfg(not(feature = "debug-invariants"))]
#[inline(always)]
pub fn check_node(_g: &BipartiteGraph, _l: &[u32], _r_new: &[u32]) {}

/// Asserts that a trie key is a strictly increasing sequence of local
/// left ids drawn from the node's `L` (itself a sorted local-id set):
/// every key the localized MBET engine builds must be a subset of the
/// `L` it was keyed against.
#[cfg(feature = "debug-invariants")]
pub fn check_local_key(key: &[u32], l_new: &[u32]) {
    assert!(
        setops::is_strictly_increasing(key),
        "invariant: local key not strictly increasing: {key:?}"
    );
    assert!(
        setops::is_subset(key, l_new),
        "invariant: local key {key:?} escapes the node's L {l_new:?}"
    );
}

/// No-op stub (enable `debug-invariants` for the real check).
#[cfg(not(feature = "debug-invariants"))]
#[inline(always)]
pub fn check_local_key(_key: &[u32], _l_new: &[u32]) {}

/// Asserts the relabeling invariants of a freshly built
/// [`bigraph::LocalGraph`]: sorted id maps, rows strictly increasing
/// inside the left universe, each row equal to the global intersection
/// it localizes, and (when built) bitmap rows decoding to exactly their
/// sorted rows. Called once per localization.
#[cfg(feature = "debug-invariants")]
pub fn check_localization(g: &BipartiteGraph, local: &bigraph::LocalGraph) {
    local.check_consistency(g);
}

/// No-op stub (enable `debug-invariants` for the real check).
#[cfg(not(feature = "debug-invariants"))]
#[inline(always)]
pub fn check_localization(_g: &BipartiteGraph, _local: &bigraph::LocalGraph) {}

/// Asserts `Scratch` arena span discipline: every `(start, end)` span is
/// well-formed and in-bounds for an arena of `arena_len` symbols, and two
/// distinct spans never partially overlap (spans may be *identical* —
/// ablation mode shares one key span across a group's singletons — but
/// must otherwise be disjoint).
#[cfg(feature = "debug-invariants")]
pub fn check_spans<I: IntoIterator<Item = (u32, u32)>>(arena_len: usize, spans: I) {
    let mut all: Vec<(u32, u32)> = spans.into_iter().collect();
    for &(s, e) in &all {
        assert!(s <= e, "invariant: inverted span ({s}, {e})");
        assert!(
            e as usize <= arena_len,
            "invariant: span ({s}, {e}) exceeds arena length {arena_len}"
        );
    }
    all.sort_unstable();
    all.dedup();
    for w in all.windows(2) {
        let (a, b) = (w[0], w[1]);
        assert!(
            a.1 <= b.0,
            "invariant: distinct arena spans overlap: ({}, {}) vs ({}, {})",
            a.0,
            a.1,
            b.0,
            b.1
        );
    }
}

/// No-op stub (enable `debug-invariants` for the real check).
#[cfg(not(feature = "debug-invariants"))]
#[inline(always)]
pub fn check_spans<I: IntoIterator<Item = (u32, u32)>>(_arena_len: usize, _spans: I) {}

/// Asserts the cross-engine counter identity `nodes = emitted +
/// nonmaximal`: every expanded enumeration node either dies at its
/// maximality check or emits exactly one maximal biclique. Holds for
/// every engine after any *completed* run (a sink-requested stop leaves
/// one node in flight, so stopped runs are not checked).
#[cfg(feature = "debug-invariants")]
pub fn check_counter_identity(stats: &Stats) {
    assert_eq!(
        stats.nodes,
        stats.emitted + stats.nonmaximal,
        "invariant: counter identity violated (nodes = {}, emitted = {}, nonmaximal = {})",
        stats.nodes,
        stats.emitted,
        stats.nonmaximal
    );
}

/// No-op stub (enable `debug-invariants` for the real check).
#[cfg(not(feature = "debug-invariants"))]
#[inline(always)]
pub fn check_counter_identity(_stats: &Stats) {}

/// Asserts the parallel pool drained its work ledger: `pending` must be
/// zero once every worker has exited an un-stopped run.
#[cfg(feature = "debug-invariants")]
pub fn check_drained(pending: u64) {
    assert_eq!(pending, 0, "invariant: pool drained with {pending} tasks still pending");
}

/// No-op stub (enable `debug-invariants` for the real check).
#[cfg(not(feature = "debug-invariants"))]
#[inline(always)]
pub fn check_drained(_pending: u64) {}

/// End-of-run verification for the parallel driver: on a completed
/// (un-stopped) run, asserts the merged per-worker counter identity and
/// re-counts the graph serially with the same options, asserting the
/// emitted totals agree — the parallel/serial equivalence gate.
#[cfg(feature = "debug-invariants")]
pub fn check_parallel_run(
    g: &BipartiteGraph,
    opts: &crate::MbeOptions,
    merged: &Stats,
    stopped: bool,
) {
    if stopped {
        return;
    }
    check_counter_identity(merged);
    let mut count = crate::sink::CountSink::default();
    let (serial_stats, _stop) =
        crate::run::run_serial(g, opts, &crate::run::RunControl::new(), &mut count);
    let serial_emitted = serial_stats.emitted;
    assert_eq!(
        merged.emitted, serial_emitted,
        "invariant: parallel run emitted {} bicliques, serial run {}",
        merged.emitted, serial_emitted
    );
}

/// No-op stub (enable `debug-invariants` for the real check).
#[cfg(not(feature = "debug-invariants"))]
#[inline(always)]
pub fn check_parallel_run(
    _g: &BipartiteGraph,
    _opts: &crate::MbeOptions,
    _merged: &Stats,
    _stopped: bool,
) {
}

/// Asserts the partial-result guarantee of the run-control plane: a
/// *stopped* run's collected output is a duplicate-free subset of the
/// complete run's output (re-derived serially with the same options and
/// thresholds but no control limits). Completed runs are skipped here —
/// their full equality is covered by the engine differential tests.
///
/// When `checkpoint` is `Some` (a first, non-resumed segment's
/// checkpoint), additionally asserts the resume-union invariant: running
/// the checkpoint's frontier to completion yields a set *disjoint* from
/// `emitted` whose union *equals* the complete run — i.e. the checkpoint
/// loses nothing and duplicates nothing. Post-panic checkpoints
/// (`StopReason::WorkerPanicked`) are exempt: the panicked task is
/// deliberately excluded from the frontier, so the union is a subset.
#[cfg(feature = "debug-invariants")]
pub fn check_stopped_collect(
    g: &BipartiteGraph,
    opts: &crate::MbeOptions,
    thresholds: Option<crate::SizeThresholds>,
    emitted: &[crate::Biclique],
    stop: crate::StopReason,
    checkpoint: Option<&crate::Checkpoint>,
) {
    use std::collections::HashSet;
    if stop.is_complete() {
        return;
    }
    let mut seen: HashSet<&crate::Biclique> = HashSet::with_capacity(emitted.len());
    for b in emitted {
        assert!(seen.insert(b), "invariant: stopped run emitted a duplicate biclique: {b:?}");
    }
    let control = crate::run::RunControl::new();
    let mut full = crate::sink::CollectSink::new();
    match thresholds {
        Some(thr) => {
            let _ = crate::filtered::run_filtered(g, thr, &control, &mut full);
        }
        None => {
            let _ = crate::run::run_serial(g, opts, &control, &mut full);
        }
    }
    let complete: HashSet<crate::Biclique> = full.into_vec().into_iter().collect();
    for b in emitted {
        assert!(
            complete.contains(b),
            "invariant: stopped run emitted a biclique absent from the complete run: {b:?}"
        );
    }
    let Some(ckpt) = checkpoint else {
        return;
    };
    if ckpt.stop == crate::StopReason::WorkerPanicked {
        return;
    }
    // Resume-union: frontier ∪ emitted = complete, disjointly.
    let mut rest = crate::sink::CollectSink::new();
    let out = crate::run::run_serial_resumable(
        g,
        opts,
        &crate::run::RunControl::new(),
        &mut rest,
        Some(&ckpt.frontier),
        crate::obs::ObsCtx::noop(),
    );
    assert!(
        out.stop.is_complete(),
        "invariant: uncontrolled frontier replay stopped ({:?})",
        out.stop
    );
    let mut union: HashSet<crate::Biclique> = HashSet::with_capacity(complete.len());
    for b in emitted.iter().cloned().chain(rest.into_vec()) {
        assert!(
            union.insert(b.clone()),
            "invariant: resume-union duplicate — biclique in both the stopped segment and \
             the frontier replay: {b:?}"
        );
    }
    assert!(
        union.iter().all(|b| complete.contains(b)),
        "invariant: resume-union contains a biclique absent from the complete run"
    );
    assert_eq!(
        union.len(),
        complete.len(),
        "invariant: resume-union misses {} of the complete run's bicliques",
        complete.len() - union.len()
    );
}

/// No-op stub (enable `debug-invariants` for the real check).
#[cfg(not(feature = "debug-invariants"))]
#[inline(always)]
pub fn check_stopped_collect(
    _g: &BipartiteGraph,
    _opts: &crate::MbeOptions,
    _thresholds: Option<crate::SizeThresholds>,
    _emitted: &[crate::Biclique],
    _stop: crate::StopReason,
    _checkpoint: Option<&crate::Checkpoint>,
) {
}

#[cfg(all(test, feature = "debug-invariants"))]
mod tests {
    use super::*;

    fn g0() -> BipartiteGraph {
        BipartiteGraph::from_edges(3, 3, &[(0, 0), (0, 1), (1, 0), (1, 1), (2, 2)]).unwrap()
    }

    #[test]
    fn check_node_accepts_true_nodes() {
        // ({u0,u1}, {v0,v1}) is a maximal biclique of g0.
        check_node(&g0(), &[0, 1], &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "common neighborhood")]
    fn check_node_rejects_wrong_l() {
        check_node(&g0(), &[0], &[0, 1]); // true L is {u0, u1}
    }

    #[test]
    #[should_panic(expected = "not sorted")]
    fn check_node_rejects_unsorted_l() {
        check_node(&g0(), &[1, 0], &[0, 1]);
    }

    #[test]
    fn check_local_key_accepts_subsets() {
        check_local_key(&[0, 2, 3], &[0, 1, 2, 3]);
        check_local_key(&[], &[]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn check_local_key_rejects_duplicates() {
        check_local_key(&[1, 1], &[0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "escapes")]
    fn check_local_key_rejects_non_subset() {
        check_local_key(&[0, 4], &[0, 1, 2, 3]);
    }

    #[test]
    fn check_localization_accepts_fresh_build() {
        let g = g0();
        let mut local = bigraph::LocalGraph::new(setops::Kernel::Adaptive);
        local.localize(&g, g.nbr_v(0), &[0, 1]);
        check_localization(&g, &local);
    }

    #[test]
    fn check_spans_accepts_disjoint_and_identical() {
        check_spans(10, [(0, 3), (3, 5), (5, 10), (0, 3)]);
        check_spans(0, std::iter::empty());
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn check_spans_rejects_partial_overlap() {
        check_spans(10, [(0, 4), (2, 6)]);
    }

    #[test]
    #[should_panic(expected = "exceeds arena")]
    fn check_spans_rejects_out_of_bounds() {
        check_spans(4, [(2, 6)]);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn check_spans_rejects_inverted() {
        check_spans(10, [(4, 2)]);
    }

    #[test]
    fn counter_identity_accepts_closed_books() {
        let s = Stats { nodes: 10, emitted: 7, nonmaximal: 3, ..Default::default() };
        check_counter_identity(&s);
    }

    #[test]
    #[should_panic(expected = "counter identity")]
    fn counter_identity_rejects_leak() {
        let s = Stats { nodes: 11, emitted: 7, nonmaximal: 3, ..Default::default() };
        check_counter_identity(&s);
    }

    #[test]
    #[should_panic(expected = "still pending")]
    fn drained_rejects_leftover_pending() {
        check_drained(3);
    }

    #[test]
    fn stopped_collect_accepts_true_subset() {
        let g = g0();
        // ({u0,u1}, {v0,v1}) is a genuine maximal biclique of g0.
        let partial = vec![crate::Biclique { left: vec![0, 1], right: vec![0, 1] }];
        check_stopped_collect(
            &g,
            &crate::MbeOptions::default(),
            None,
            &partial,
            crate::StopReason::EmitBudget,
            None,
        );
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn stopped_collect_rejects_duplicates() {
        let g = g0();
        let b = crate::Biclique { left: vec![0, 1], right: vec![0, 1] };
        check_stopped_collect(
            &g,
            &crate::MbeOptions::default(),
            None,
            &[b.clone(), b],
            crate::StopReason::Cancelled,
            None,
        );
    }

    #[test]
    #[should_panic(expected = "absent from the complete run")]
    fn stopped_collect_rejects_foreign_biclique() {
        let g = g0();
        // {u0} × {v2} is not even an edge of g0.
        let partial = vec![crate::Biclique { left: vec![0], right: vec![2] }];
        check_stopped_collect(
            &g,
            &crate::MbeOptions::default(),
            None,
            &partial,
            crate::StopReason::Deadline,
            None,
        );
    }

    #[test]
    fn stopped_collect_skips_completed_runs() {
        // A "foreign" biclique passes when the run completed: the check
        // only applies to stopped runs.
        let g = g0();
        let partial = vec![crate::Biclique { left: vec![0], right: vec![2] }];
        check_stopped_collect(
            &g,
            &crate::MbeOptions::default(),
            None,
            &partial,
            crate::StopReason::Completed,
            None,
        );
    }
}
