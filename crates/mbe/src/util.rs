//! Rank-space helpers shared by the engines.
//!
//! MBET works with *local neighborhoods expressed as ranks within the
//! current `L`*: `NL(w)` becomes the sorted list of positions `j` with
//! `L[j] ∈ N(w)`. Rank space makes keys comparable across candidates of
//! one node (the prerequisite for trie sharing) and keeps symbols small.

/// Writes into `out` the ranks `j` (positions in `l`) such that
/// `l[j] ∈ a`. Both inputs strictly increasing; `out` is cleared first.
pub fn intersect_ranks(a: &[u32], l: &[u32], out: &mut Vec<u32>) {
    debug_assert!(setops::is_strictly_increasing(a));
    debug_assert!(setops::is_strictly_increasing(l));
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < l.len() {
        match a[i].cmp(&l[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(j as u32);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Maps rank keys back to vertex ids: `out[k] = l[ranks[k]]`.
/// `out` is cleared first; output is strictly increasing because `ranks`
/// is.
pub fn unrank(l: &[u32], ranks: &[u32], out: &mut Vec<u32>) {
    out.clear();
    out.extend(ranks.iter().map(|&r| l[r as usize]));
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ranks_basic() {
        let l = [10u32, 20, 30, 40];
        let mut out = Vec::new();
        intersect_ranks(&[20, 25, 40, 99], &l, &mut out);
        assert_eq!(out, [1, 3]);
        let mut back = Vec::new();
        unrank(&l, &out, &mut back);
        assert_eq!(back, [20, 40]);
    }

    #[test]
    fn empty_cases() {
        let mut out = vec![7];
        intersect_ranks(&[], &[1, 2], &mut out);
        assert!(out.is_empty());
        intersect_ranks(&[1, 2], &[], &mut out);
        assert!(out.is_empty());
        let mut back = vec![9];
        unrank(&[1, 2], &[], &mut back);
        assert!(back.is_empty());
    }

    proptest! {
        #[test]
        fn rank_roundtrip(
            a in proptest::collection::btree_set(0u32..200, 0..40),
            l in proptest::collection::btree_set(0u32..200, 0..40),
        ) {
            let a: Vec<u32> = a.into_iter().collect();
            let l: Vec<u32> = l.into_iter().collect();
            let mut ranks = Vec::new();
            intersect_ranks(&a, &l, &mut ranks);
            let mut back = Vec::new();
            unrank(&l, &ranks, &mut back);
            let mut want = Vec::new();
            setops::intersect_into(&a, &l, &mut want);
            prop_assert_eq!(back, want);
            prop_assert!(setops::is_strictly_increasing(&ranks));
        }
    }
}
