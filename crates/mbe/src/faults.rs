//! Deterministic fault injection, compiled in by the `fault-injection`
//! cargo feature.
//!
//! The checkpoint/resume and panic-containment machinery only matters
//! when something goes wrong, and "something goes wrong" is hard to
//! produce on demand with real workloads. This module scripts it exactly:
//! a [`FaultPlan`] names the global emission index at which to panic
//! (exercising the parallel driver's `catch_unwind` containment) or to
//! return a sink failure (exercising checkpoint capture), and a
//! [`FaultySink`] wrapped around any real sink carries the plan out.
//!
//! The plan's counter is shared across clones, so per-worker sinks in the
//! parallel driver count emissions *globally* — the fault fires exactly
//! once per run, on whichever worker reaches the scripted index first.
//! That makes fault scripts deterministic in *count* (always exactly one
//! fault after N delivered emissions) even though the parallel emission
//! order is not.
//!
//! Wired into a run via [`crate::Enumeration::faults`]; exercised by
//! `tests/faults.rs`. Never compiled into production builds.

use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::run::StopReason;
use crate::sink::BicliqueSink;

/// A scripted fault: panic and/or fail the sink at exact emission indices.
///
/// Clones share the underlying counter, so one plan distributed across
/// parallel workers still fires each fault exactly once, at the scripted
/// global index.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    counter: Arc<AtomicU64>,
    panic_at: Option<u64>,
    fail_at: Option<u64>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Panics inside the sink at emission index `n` (0-based).
    pub fn panic_at(mut self, n: u64) -> Self {
        self.panic_at = Some(n);
        self
    }

    /// Returns a sink-stop verdict at emission index `n` (0-based); the
    /// emission is rejected *before* delivery, so a resumed run delivers
    /// it exactly once.
    pub fn fail_at(mut self, n: u64) -> Self {
        self.fail_at = Some(n);
        self
    }

    /// Claims the next global emission index and carries out any fault
    /// scripted for it.
    fn check(&self) -> ControlFlow<StopReason> {
        let n = self.counter.fetch_add(1, Ordering::SeqCst);
        if self.panic_at == Some(n) {
            panic!("injected fault: scripted panic at emission {n}");
        }
        if self.fail_at == Some(n) {
            return ControlFlow::Break(StopReason::SinkStopped);
        }
        ControlFlow::Continue(())
    }
}

/// A sink wrapper that executes a [`FaultPlan`] before forwarding each
/// emission to `inner`.
#[derive(Debug)]
pub struct FaultySink<S> {
    plan: Option<FaultPlan>,
    inner: S,
}

impl<S> FaultySink<S> {
    /// Wraps `inner`; a `None` plan forwards everything untouched.
    pub fn new(plan: Option<FaultPlan>, inner: S) -> Self {
        FaultySink { plan, inner }
    }

    /// Unwraps the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: BicliqueSink> BicliqueSink for FaultySink<S> {
    fn emit(&mut self, left: &[u32], right: &[u32]) -> ControlFlow<StopReason> {
        if let Some(plan) = &self.plan {
            // Faults fire BEFORE the inner sink sees the emission, so a
            // scripted failure leaves the emission undelivered — exactly
            // the contract checkpoint capture relies on.
            plan.check()?;
        }
        self.inner.emit(left, right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CollectSink;

    #[test]
    fn empty_plan_forwards_everything() {
        let mut sink = FaultySink::new(None, CollectSink::new());
        assert!(sink.emit(&[0], &[1]).is_continue());
        assert_eq!(sink.into_inner().into_vec().len(), 1);
    }

    #[test]
    fn fail_at_rejects_before_delivery() {
        let mut sink = FaultySink::new(Some(FaultPlan::new().fail_at(1)), CollectSink::new());
        assert!(sink.emit(&[0], &[0]).is_continue());
        assert_eq!(sink.emit(&[0], &[1]), ControlFlow::Break(StopReason::SinkStopped));
        // The failed emission was never delivered.
        assert_eq!(sink.into_inner().into_vec().len(), 1);
    }

    #[test]
    fn clones_share_the_counter() {
        let plan = FaultPlan::new().fail_at(2);
        let mut a = FaultySink::new(Some(plan.clone()), CollectSink::new());
        let mut b = FaultySink::new(Some(plan), CollectSink::new());
        assert!(a.emit(&[0], &[0]).is_continue()); // index 0
        assert!(b.emit(&[0], &[1]).is_continue()); // index 1
        assert!(a.emit(&[0], &[2]).is_break()); // index 2: fault
    }

    #[test]
    #[should_panic(expected = "injected fault")]
    fn panic_at_panics() {
        let mut sink = FaultySink::new(Some(FaultPlan::new().panic_at(0)), CollectSink::new());
        let _ = sink.emit(&[0], &[0]);
    }
}
