//! Biclique consumers.
//!
//! Engines hand each maximal biclique to a [`BicliqueSink`] as a pair of
//! sorted id slices — no allocation per emission. Sinks decide what to
//! keep: everything ([`CollectSink`]), a count ([`CountSink`]), a
//! compressed prefix-tree store ([`TrieSink`], the MBET/MBETM output
//! representation), or a user callback ([`FnSink`]).

use ptree::RTrie;

/// One maximal biclique, with both sides sorted ascending.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Biclique {
    /// The `U`-side vertices.
    pub left: Vec<u32>,
    /// The `V`-side vertices.
    pub right: Vec<u32>,
}

impl Biclique {
    /// Builds a biclique from unsorted id lists.
    pub fn new(mut left: Vec<u32>, mut right: Vec<u32>) -> Self {
        left.sort_unstable();
        right.sort_unstable();
        Biclique { left, right }
    }

    /// `|L| + |R|`.
    pub fn size(&self) -> usize {
        self.left.len() + self.right.len()
    }

    /// Number of edges covered, `|L| · |R|`.
    pub fn edges(&self) -> usize {
        self.left.len() * self.right.len()
    }
}

/// Receives maximal bicliques as they are found.
///
/// `emit` returns `true` to continue enumeration and `false` to request a
/// stop; engines honor the stop at the next branch boundary, so a handful
/// of further emissions may still arrive on pathological shapes (never in
/// the serial engines, which check before every emission).
pub trait BicliqueSink {
    /// Called once per maximal biclique. Both slices are sorted ascending.
    fn emit(&mut self, left: &[u32], right: &[u32]) -> bool;
}

/// Collects every biclique into a vector.
#[derive(Default)]
pub struct CollectSink {
    items: Vec<Biclique>,
}

impl CollectSink {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The collected bicliques, in emission order.
    pub fn into_vec(self) -> Vec<Biclique> {
        self.items
    }

    /// Number collected so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` iff nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl BicliqueSink for CollectSink {
    fn emit(&mut self, left: &[u32], right: &[u32]) -> bool {
        self.items.push(Biclique { left: left.to_vec(), right: right.to_vec() });
        true
    }
}

/// Counts bicliques without storing them.
#[derive(Default)]
pub struct CountSink {
    n: u64,
}

impl CountSink {
    /// Number of bicliques seen.
    pub fn count(&self) -> u64 {
        self.n
    }
}

impl BicliqueSink for CountSink {
    fn emit(&mut self, _left: &[u32], _right: &[u32]) -> bool {
        self.n += 1;
        true
    }
}

/// Stores the `R`-sets of emitted bicliques in a prefix tree — the
/// compressed output representation behind MBET's space bound, and, with a
/// node budget, the space-bounded MBETM mode (the trie then only counts
/// accurately; membership becomes best-effort after evictions).
pub struct TrieSink {
    trie: RTrie,
    duplicates: u64,
}

impl TrieSink {
    /// Unbounded store (MBET mode).
    pub fn unbounded() -> Self {
        TrieSink { trie: RTrie::new(), duplicates: 0 }
    }

    /// Node-budgeted store (MBETM mode).
    pub fn with_node_budget(max_nodes: usize) -> Self {
        TrieSink { trie: RTrie::with_node_budget(max_nodes), duplicates: 0 }
    }

    /// The underlying trie.
    pub fn trie(&self) -> &RTrie {
        &self.trie
    }

    /// Consumes the sink, returning the trie.
    pub fn into_trie(self) -> RTrie {
        self.trie
    }

    /// Emissions whose `R`-set was already present. Always 0 for a correct
    /// engine with an unbounded trie — asserted in tests.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }
}

impl BicliqueSink for TrieSink {
    fn emit(&mut self, _left: &[u32], right: &[u32]) -> bool {
        if self.trie.insert(right) == ptree::rtrie::Insert::Duplicate {
            self.duplicates += 1;
        }
        true
    }
}

/// Adapts a closure into a sink.
pub struct FnSink<F: FnMut(&[u32], &[u32]) -> bool>(pub F);

impl<F: FnMut(&[u32], &[u32]) -> bool> BicliqueSink for FnSink<F> {
    fn emit(&mut self, left: &[u32], right: &[u32]) -> bool {
        (self.0)(left, right)
    }
}

/// Internal adapter: translates reordered right-side ids back to the
/// caller's id space before forwarding (`perm[internal_id] = original_id`).
pub(crate) struct MapRight<'a, S: BicliqueSink> {
    inner: &'a mut S,
    perm: &'a [u32],
    buf: Vec<u32>,
}

impl<'a, S: BicliqueSink> MapRight<'a, S> {
    pub(crate) fn new(inner: &'a mut S, perm: &'a [u32]) -> Self {
        MapRight { inner, perm, buf: Vec::new() }
    }
}

/// Free-function constructor for [`MapRight`], used by the parallel
/// driver.
pub(crate) fn map_right<'a, S: BicliqueSink>(inner: &'a mut S, perm: &'a [u32]) -> MapRight<'a, S> {
    MapRight::new(inner, perm)
}

impl<S: BicliqueSink> BicliqueSink for MapRight<'_, S> {
    fn emit(&mut self, left: &[u32], right: &[u32]) -> bool {
        self.buf.clear();
        self.buf.extend(right.iter().map(|&v| self.perm[v as usize]));
        self.buf.sort_unstable();
        self.inner.emit(left, &self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn biclique_new_sorts() {
        let b = Biclique::new(vec![3, 1], vec![9, 2, 5]);
        assert_eq!(b.left, [1, 3]);
        assert_eq!(b.right, [2, 5, 9]);
        assert_eq!(b.size(), 5);
        assert_eq!(b.edges(), 6);
    }

    #[test]
    fn collect_and_count() {
        let mut c = CollectSink::new();
        assert!(c.emit(&[0], &[1, 2]));
        assert!(c.emit(&[1], &[2]));
        assert_eq!(c.len(), 2);
        let v = c.into_vec();
        assert_eq!(v[0].right, [1, 2]);

        let mut n = CountSink::default();
        n.emit(&[0], &[0]);
        n.emit(&[0], &[1]);
        assert_eq!(n.count(), 2);
    }

    #[test]
    fn trie_sink_detects_duplicates() {
        let mut t = TrieSink::unbounded();
        t.emit(&[0], &[1, 2]);
        t.emit(&[0], &[1, 3]);
        assert_eq!(t.duplicates(), 0);
        t.emit(&[9], &[1, 2]);
        assert_eq!(t.duplicates(), 1);
        assert_eq!(t.trie().len(), 2);
    }

    #[test]
    fn map_right_translates_and_resorts() {
        let mut inner = CollectSink::new();
        // perm[new] = old: internal 0 -> original 5, internal 1 -> 3.
        let perm = [5u32, 3];
        let mut m = MapRight::new(&mut inner, &perm);
        m.emit(&[7], &[0, 1]);
        let v = inner.into_vec();
        assert_eq!(v[0].right, [3, 5]);
        assert_eq!(v[0].left, [7]);
    }

    #[test]
    fn fn_sink_stop_propagates() {
        let mut count = 0;
        let mut s = FnSink(|_l: &[u32], _r: &[u32]| {
            count += 1;
            count < 2
        });
        assert!(s.emit(&[], &[]));
        assert!(!s.emit(&[], &[]));
    }
}
