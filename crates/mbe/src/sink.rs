//! Biclique consumers.
//!
//! Engines hand each maximal biclique to a [`BicliqueSink`] as a pair of
//! sorted id slices — no allocation per emission. Sinks decide what to
//! keep: everything ([`CollectSink`]), a count ([`CountSink`]), a
//! compressed prefix-tree store ([`TrieSink`], the MBET/MBETM output
//! representation), or a user callback ([`FnSink`]).

use std::ops::ControlFlow;

use ptree::RTrie;

use crate::run::StopReason;

/// Sink verdict: keep enumerating.
pub const CONTINUE: ControlFlow<StopReason> = ControlFlow::Continue(());

/// Sink verdict: stop the run; the report will say
/// [`StopReason::SinkStopped`].
pub const STOP: ControlFlow<StopReason> = ControlFlow::Break(StopReason::SinkStopped);

/// One maximal biclique, with both sides sorted ascending.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Biclique {
    /// The `U`-side vertices.
    pub left: Vec<u32>,
    /// The `V`-side vertices.
    pub right: Vec<u32>,
}

impl Biclique {
    /// Builds a biclique from unsorted id lists.
    pub fn new(mut left: Vec<u32>, mut right: Vec<u32>) -> Self {
        left.sort_unstable();
        right.sort_unstable();
        Biclique { left, right }
    }

    /// `|L| + |R|`.
    pub fn size(&self) -> usize {
        self.left.len() + self.right.len()
    }

    /// Number of edges covered, `|L| · |R|`.
    pub fn edges(&self) -> usize {
        self.left.len() * self.right.len()
    }
}

/// Receives maximal bicliques as they are found.
///
/// # Contract
///
/// - **Exactly once.** For a run that completes, `emit` is called exactly
///   once per maximal biclique `(L, R)` of the graph with both sides
///   non-empty. A stopped run calls it for a duplicate-free subset —
///   never twice for the same biclique, even under the parallel driver.
/// - **Input-id space.** Both slices are sorted ascending and use the
///   caller's original vertex ids: any internal [`VertexOrder`]
///   permutation is un-applied before the sink sees the biclique.
///   (Engines call sinks through an internal remapping adapter; the raw
///   engine layer emits internal ids.)
/// - **Stop semantics.** Returning `ControlFlow::Break(reason)` requests
///   a stop; the driver records the *first* break as the run's
///   [`StopReason`] and the emission that returned it is **not** counted
///   in `Stats::emitted`. Serial drivers stop before any further
///   emission; parallel workers observe the stop at their next emission
///   or idle check, then drain remaining queued tasks without running
///   them. User sinks should break with [`StopReason::SinkStopped`] (the
///   [`STOP`] constant); [`TrieSink::with_node_limit`] breaks with
///   [`StopReason::NodeBudget`].
/// - **Break verdicts are undelivered.** An emission whose `emit` call
///   returned `Break` is treated as *not delivered*: it is excluded from
///   `Stats::emitted`, and the enumeration node that produced it is
///   captured in the run's [`Checkpoint`], so a resumed run re-delivers
///   exactly that biclique (and everything after it) exactly once. A
///   sink that does real work on a `Break`-returning call must make that
///   work idempotent.
/// - **Borrowed slices.** The slices are only valid for the duration of
///   the call; copy what you keep.
///
/// [`Checkpoint`]: crate::Checkpoint
/// [`VertexOrder`]: bigraph::order::VertexOrder
pub trait BicliqueSink {
    /// Called once per maximal biclique. Both slices are sorted
    /// ascending. Return [`CONTINUE`] to keep enumerating or
    /// `ControlFlow::Break(reason)` to stop the run.
    fn emit(&mut self, left: &[u32], right: &[u32]) -> ControlFlow<StopReason>;
}

/// Collects every biclique into a vector.
#[derive(Default)]
pub struct CollectSink {
    items: Vec<Biclique>,
}

impl CollectSink {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The collected bicliques, in emission order.
    pub fn into_vec(self) -> Vec<Biclique> {
        self.items
    }

    /// Number collected so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` iff nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl BicliqueSink for CollectSink {
    fn emit(&mut self, left: &[u32], right: &[u32]) -> ControlFlow<StopReason> {
        self.items.push(Biclique { left: left.to_vec(), right: right.to_vec() });
        CONTINUE
    }
}

/// Counts bicliques without storing them.
#[derive(Default)]
pub struct CountSink {
    n: u64,
}

impl CountSink {
    /// Number of bicliques seen.
    pub fn count(&self) -> u64 {
        self.n
    }
}

impl BicliqueSink for CountSink {
    fn emit(&mut self, _left: &[u32], _right: &[u32]) -> ControlFlow<StopReason> {
        self.n += 1;
        CONTINUE
    }
}

/// Stores the `R`-sets of emitted bicliques in a prefix tree — the
/// compressed output representation behind MBET's space bound.
///
/// Three modes:
/// - [`TrieSink::unbounded`]: plain MBET store, never stops the run.
/// - [`TrieSink::with_node_budget`]: MBETM mode — the trie *evicts* to
///   stay within the budget (counts stay accurate, membership becomes
///   best-effort) and the run continues.
/// - [`TrieSink::with_node_limit`]: strict mode — once the trie exceeds
///   the limit the sink stops the run with [`StopReason::NodeBudget`],
///   folding the trie budget into the run-control vocabulary.
pub struct TrieSink {
    trie: RTrie,
    duplicates: u64,
    node_limit: Option<usize>,
}

impl TrieSink {
    /// Unbounded store (MBET mode).
    pub fn unbounded() -> Self {
        TrieSink { trie: RTrie::new(), duplicates: 0, node_limit: None }
    }

    /// Node-budgeted store (MBETM mode): evicts to stay within
    /// `max_nodes`, never stops the run.
    pub fn with_node_budget(max_nodes: usize) -> Self {
        TrieSink { trie: RTrie::with_node_budget(max_nodes), duplicates: 0, node_limit: None }
    }

    /// Strict node-limited store: stops the run with
    /// [`StopReason::NodeBudget`] at the first emission after the trie
    /// exceeds `max_nodes` (the overflowing set itself is stored, so
    /// `Stats::emitted` always equals the number of sets stored).
    pub fn with_node_limit(max_nodes: usize) -> Self {
        TrieSink { trie: RTrie::new(), duplicates: 0, node_limit: Some(max_nodes) }
    }

    /// The underlying trie.
    pub fn trie(&self) -> &RTrie {
        &self.trie
    }

    /// Consumes the sink, returning the trie.
    pub fn into_trie(self) -> RTrie {
        self.trie
    }

    /// Emissions whose `R`-set was already present. Always 0 for a
    /// correct engine with an unbounded trie — asserted in tests.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }
}

impl BicliqueSink for TrieSink {
    fn emit(&mut self, _left: &[u32], right: &[u32]) -> ControlFlow<StopReason> {
        if let Some(limit) = self.node_limit {
            if self.trie.node_count() > limit {
                return ControlFlow::Break(StopReason::NodeBudget);
            }
        }
        if self.trie.insert(right) == ptree::rtrie::Insert::Duplicate {
            self.duplicates += 1;
        }
        CONTINUE
    }
}

/// Adapts a closure into a sink. Return [`CONTINUE`] to keep going,
/// [`STOP`] (or any `ControlFlow::Break(reason)`) to stop the run.
pub struct FnSink<F: FnMut(&[u32], &[u32]) -> ControlFlow<StopReason>>(pub F);

impl<F: FnMut(&[u32], &[u32]) -> ControlFlow<StopReason>> BicliqueSink for FnSink<F> {
    fn emit(&mut self, left: &[u32], right: &[u32]) -> ControlFlow<StopReason> {
        (self.0)(left, right)
    }
}

/// Internal adapter: translates reordered right-side ids back to the
/// caller's id space before forwarding (`perm[internal_id] =
/// original_id`), propagating the inner sink's verdict unchanged.
pub(crate) struct MapRight<'a, S: BicliqueSink> {
    inner: &'a mut S,
    perm: &'a [u32],
    buf: Vec<u32>,
}

impl<'a, S: BicliqueSink> MapRight<'a, S> {
    pub(crate) fn new(inner: &'a mut S, perm: &'a [u32]) -> Self {
        MapRight { inner, perm, buf: Vec::new() }
    }
}

/// Free-function constructor for [`MapRight`], used by the parallel
/// driver.
pub(crate) fn map_right<'a, S: BicliqueSink>(inner: &'a mut S, perm: &'a [u32]) -> MapRight<'a, S> {
    MapRight::new(inner, perm)
}

impl<S: BicliqueSink> BicliqueSink for MapRight<'_, S> {
    fn emit(&mut self, left: &[u32], right: &[u32]) -> ControlFlow<StopReason> {
        self.buf.clear();
        self.buf.extend(right.iter().map(|&v| self.perm[v as usize]));
        self.buf.sort_unstable();
        self.inner.emit(left, &self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn biclique_new_sorts() {
        let b = Biclique::new(vec![3, 1], vec![9, 2, 5]);
        assert_eq!(b.left, [1, 3]);
        assert_eq!(b.right, [2, 5, 9]);
        assert_eq!(b.size(), 5);
        assert_eq!(b.edges(), 6);
    }

    #[test]
    fn collect_and_count() {
        let mut c = CollectSink::new();
        assert!(c.emit(&[0], &[1, 2]).is_continue());
        assert!(c.emit(&[1], &[2]).is_continue());
        assert_eq!(c.len(), 2);
        let v = c.into_vec();
        assert_eq!(v[0].right, [1, 2]);

        let mut n = CountSink::default();
        assert!(n.emit(&[0], &[0]).is_continue());
        assert!(n.emit(&[0], &[1]).is_continue());
        assert_eq!(n.count(), 2);
    }

    #[test]
    fn trie_sink_detects_duplicates() {
        let mut t = TrieSink::unbounded();
        assert!(t.emit(&[0], &[1, 2]).is_continue());
        assert!(t.emit(&[0], &[1, 3]).is_continue());
        assert_eq!(t.duplicates(), 0);
        assert!(t.emit(&[9], &[1, 2]).is_continue());
        assert_eq!(t.duplicates(), 1);
        assert_eq!(t.trie().len(), 2);
    }

    #[test]
    fn trie_sink_node_limit_stops_with_node_budget() {
        let mut t = TrieSink::with_node_limit(2);
        assert!(t.emit(&[0], &[1, 2]).is_continue());
        // The trie now holds 2 nodes; the next emission may still be
        // admitted or may break, depending on the overshoot — pile on
        // until it breaks and check the reason.
        let mut stopped = None;
        for r in 3..20u32 {
            if let ControlFlow::Break(reason) = t.emit(&[0], &[1, r]) {
                stopped = Some(reason);
                break;
            }
        }
        assert_eq!(stopped, Some(StopReason::NodeBudget));
        assert!(!t.trie().is_empty());
    }

    #[test]
    fn trie_sink_evicting_budget_never_stops() {
        let mut t = TrieSink::with_node_budget(2);
        for r in 0..20u32 {
            assert!(t.emit(&[0], &[r, r + 100]).is_continue());
        }
        assert_eq!(t.trie().total_new(), 20);
    }

    #[test]
    fn map_right_translates_and_resorts() {
        let mut inner = CollectSink::new();
        // perm[new] = old: internal 0 -> original 5, internal 1 -> 3.
        let perm = [5u32, 3];
        let mut m = MapRight::new(&mut inner, &perm);
        assert!(m.emit(&[7], &[0, 1]).is_continue());
        let v = inner.into_vec();
        assert_eq!(v[0].right, [3, 5]);
        assert_eq!(v[0].left, [7]);
    }

    #[test]
    fn fn_sink_stop_propagates() {
        let mut count = 0;
        let mut s = FnSink(|_l: &[u32], _r: &[u32]| {
            count += 1;
            if count < 2 {
                CONTINUE
            } else {
                STOP
            }
        });
        assert!(s.emit(&[], &[]).is_continue());
        assert_eq!(s.emit(&[], &[]), ControlFlow::Break(StopReason::SinkStopped));
    }

    #[test]
    fn map_right_propagates_stop_verdict() {
        let mut inner = FnSink(|_l: &[u32], _r: &[u32]| STOP);
        let perm = [0u32, 1];
        let mut m = MapRight::new(&mut inner, &perm);
        assert_eq!(m.emit(&[0], &[1]), ControlFlow::Break(StopReason::SinkStopped));
    }
}
