//! Baseline enumeration engines: MineLMBC, MBEA, iMBEA.
//!
//! All three share the set-enumeration-tree recursion described in
//! DESIGN.md §3.1 and differ in two places:
//!
//! * **maximality check** — `MineLmbc` recomputes the common neighborhood
//!   `C(L')` from the graph and compares it to `R'` (the literal
//!   "Algorithm 1" of the background literature); `Mbea`/`Imbea` keep an
//!   excluded set `Q` and test `L' ⊆ N(q)` per excluded vertex, which is
//!   what makes them competitive;
//! * **candidate order** — `Imbea` re-sorts the candidates of every node
//!   by ascending local degree `|N(w) ∩ L|`, which tends to move failing
//!   branches earlier and shrink the subtrees of the rest.
//!
//! These engines deliberately mirror the published pseudocode, including
//! its per-node allocations — they are the comparators the MBET speedups
//! in the experiment suite are measured against. The node body runs
//! through the shared expansion helpers in [`crate::task`] (over the
//! global-graph [`crate::task::NbrSource`]), so every engine answers the
//! candidate/exclusion questions with the same [`setops::SetView`]
//! operation set.

use std::ops::ControlFlow;

use crate::checkpoint::ResumeTask;
use crate::metrics::Stats;
use crate::run::StopReason;
use crate::sink::BicliqueSink;
use crate::task::{NbrSource, RootTask};
use crate::Algorithm;
use bigraph::BipartiteGraph;

/// A baseline engine instance (holds scratch buffers; cheap to create).
pub struct BaselineEngine<'g> {
    g: &'g BipartiteGraph,
    alg: Algorithm,
    /// Scratch for `C(L')` recomputation (MineLMBC only).
    cbuf: Vec<u32>,
    cbuf2: Vec<u32>,
    /// Unexplored subtrees captured while unwinding out of a stopped
    /// `run_task`/`run_node` call; drained via `take_frontier`.
    frontier: Vec<ResumeTask>,
    /// Deepest recursion the last `run_task`/`run_node` call reached.
    task_depth: usize,
}

impl<'g> BaselineEngine<'g> {
    /// An engine over `g`. `alg` must not be [`Algorithm::Mbet`].
    pub fn new(g: &'g BipartiteGraph, alg: Algorithm) -> Self {
        assert!(alg != Algorithm::Mbet, "use MbetEngine for Algorithm::Mbet");
        BaselineEngine {
            g,
            alg,
            cbuf: Vec::new(),
            cbuf2: Vec::new(),
            frontier: Vec::new(),
            task_depth: 0,
        }
    }

    /// Deepest enumeration recursion the most recent
    /// [`run_task`](Self::run_task)/[`run_node`](Self::run_node) call
    /// reached (0 when the root emitted without branching).
    pub fn task_depth(&self) -> usize {
        self.task_depth
    }

    /// Runs one root task. Breaks iff the sink (or the control plane
    /// gating it) requested a stop.
    pub fn run_task(
        &mut self,
        task: &RootTask,
        sink: &mut dyn BicliqueSink,
        stats: &mut Stats,
    ) -> ControlFlow<StopReason> {
        self.frontier.clear();
        self.task_depth = 0;
        self.expand(0, &task.l0, &[], task.v, &task.p0, &task.q0, sink, stats)
    }

    /// Takes the frontier captured by the last stopped call (empty if it
    /// ran to completion).
    pub(crate) fn take_frontier(&mut self) -> Vec<ResumeTask> {
        std::mem::take(&mut self.frontier)
    }

    /// Runs an arbitrary unchecked node (used by the parallel driver's
    /// split tasks). Semantics identical to [`Self::run_task`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_node(
        &mut self,
        l: &[u32],
        r_parent: &[u32],
        v: u32,
        p: &[u32],
        q: &[u32],
        sink: &mut dyn BicliqueSink,
        stats: &mut Stats,
    ) -> ControlFlow<StopReason> {
        self.frontier.clear();
        self.task_depth = 0;
        self.expand(0, l, r_parent, v, p, q, sink, stats)
    }

    /// Expands the node reached by traversing `v` from a parent with
    /// biclique `(·, r_parent)`: `l_new` is already `L ∩ N(v)`.
    ///
    /// `untraversed` are the parent's remaining candidates (excluding `v`),
    /// `traversed` the excluded set at this point. Emits the biclique when
    /// maximal and recurses. Breaks iff enumeration should stop.
    #[allow(clippy::too_many_arguments)]
    fn expand(
        &mut self,
        depth: usize,
        l_new: &[u32],
        r_parent: &[u32],
        v: u32,
        untraversed: &[u32],
        traversed: &[u32],
        sink: &mut dyn BicliqueSink,
        stats: &mut Stats,
    ) -> ControlFlow<StopReason> {
        debug_assert!(!l_new.is_empty());
        stats.nodes += 1;
        self.task_depth = self.task_depth.max(depth);

        // Cheap rejection first for the Q-based variants: some excluded
        // vertex adjacent to all of L' proves (L', ·) can never be maximal
        // here, and the same holds for every descendant (L'' ⊆ L').
        if self.alg != Algorithm::MineLmbc
            && crate::task::covered_by_excluded(self.g, traversed, l_new)
        {
            stats.nonmaximal += 1;
            return ControlFlow::Continue(());
        }

        // Absorption: untraversed candidates adjacent to all of L' belong
        // in R'. Collect them and the surviving candidate set in one pass.
        let mut absorbed: Vec<u32> = Vec::new();
        let mut p_new: Vec<u32> = Vec::new();
        crate::task::partition_candidates(self.g, untraversed, l_new, &mut absorbed, &mut p_new);
        stats.absorbed += absorbed.len() as u64;

        let r_new = crate::task::assemble_r(r_parent, v, &absorbed);
        crate::invariants::check_node(self.g, l_new, &r_new);

        if self.alg == Algorithm::MineLmbc {
            // Algorithm-1 check: R' must equal C(L') recomputed from the
            // graph. (The Q-based engines already rejected above.)
            if !self.r_equals_common_neighbors(l_new, &r_new) {
                stats.nonmaximal += 1;
                return ControlFlow::Continue(());
            }
        }

        // A Break verdict means this emission was NOT delivered (the
        // control gate rejects before forwarding), so re-running this
        // whole node on resume delivers it exactly once.
        if let ControlFlow::Break(r) = sink.emit(l_new, &r_new) {
            self.frontier.push(ResumeTask::Node {
                l: l_new.to_vec(),
                r_parent: r_parent.to_vec(),
                v,
                p: untraversed.to_vec(),
                q: traversed.to_vec(),
            });
            return ControlFlow::Break(r);
        }
        stats.emitted += 1;

        if p_new.is_empty() {
            return ControlFlow::Continue(());
        }

        // Q' = excluded vertices still relevant below (sharing a neighbor
        // with L'). MineLMBC has no Q at all.
        let mut q_now: Vec<u32> = Vec::new();
        if self.alg != Algorithm::MineLmbc {
            crate::task::live_excluded(self.g, traversed, l_new, &mut q_now);
        }

        if self.alg == Algorithm::Imbea {
            // iMBEA: branch on sparse candidates first.
            let g = self.g;
            p_new.sort_by_key(|&w| g.nbr(w, l_new.len()).intersect_count(l_new));
        }

        let mut l_child = Vec::new();
        for i in 0..p_new.len() {
            let w = p_new[i];
            crate::task::child_l(self.g, l_new, w, &mut l_child);
            debug_assert!(!l_child.is_empty(), "candidates share a neighbor with L'");
            let l_child_owned = std::mem::take(&mut l_child);
            if let ControlFlow::Break(r) = self.expand(
                depth + 1,
                &l_child_owned,
                &r_new,
                w,
                &p_new[i + 1..],
                &q_now,
                sink,
                stats,
            ) {
                // The broken child captured its own subtree; this level
                // owes the checkpoint its untried siblings `p_new[i+1..]`.
                self.capture_siblings(l_new, &r_new, &p_new, i, &q_now);
                return ControlFlow::Break(r);
            }
            l_child = l_child_owned;
            q_now.push(w);
        }
        ControlFlow::Continue(())
    }

    /// Pushes the untried sibling branches `p_new[broke_at + 1..]` as
    /// resume tasks. Sibling `k` sees `q = q_now ∪ p_new[broke_at..k]`
    /// (every earlier branch counts as traversed). The `p`/`q` sets are
    /// conservative supersets — members with an empty local neighborhood
    /// are filtered by the child's own candidate scan on resume.
    fn capture_siblings(
        &mut self,
        l_parent: &[u32],
        r_new: &[u32],
        p_new: &[u32],
        broke_at: usize,
        q_now: &[u32],
    ) {
        let mut q_accum = q_now.to_vec();
        q_accum.push(p_new[broke_at]);
        for k in broke_at + 1..p_new.len() {
            let w = p_new[k];
            let mut l_child = Vec::new();
            crate::task::child_l(self.g, l_parent, w, &mut l_child);
            self.frontier.push(ResumeTask::Node {
                l: l_child,
                r_parent: r_new.to_vec(),
                v: w,
                p: p_new[k + 1..].to_vec(),
                q: q_accum.clone(),
            });
            q_accum.push(w);
        }
    }

    /// `true` iff `C(l) == r` where `C(l) = ∩_{u ∈ l} N(u)` in `V`.
    fn r_equals_common_neighbors(&mut self, l: &[u32], r: &[u32]) -> bool {
        debug_assert!(!l.is_empty());
        let mut acc = std::mem::take(&mut self.cbuf);
        let mut tmp = std::mem::take(&mut self.cbuf2);
        acc.clear();
        acc.extend_from_slice(self.g.nbr_u(l[0]));
        for &u in &l[1..] {
            if acc.len() < r.len() {
                break; // can only shrink further; already too small
            }
            setops::intersect_into(&acc, self.g.nbr_u(u), &mut tmp);
            std::mem::swap(&mut acc, &mut tmp);
        }
        let eq = acc == r;
        self.cbuf = acc;
        self.cbuf2 = tmp;
        eq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CollectSink;
    use crate::task::TaskBuilder;

    fn g0() -> BipartiteGraph {
        BipartiteGraph::from_edges(
            5,
            4,
            &[
                (0, 0),
                (0, 1),
                (0, 2),
                (1, 0),
                (1, 1),
                (1, 2),
                (1, 3),
                (2, 1),
                (3, 1),
                (3, 2),
                (3, 3),
                (4, 3),
            ],
        )
        .unwrap()
    }

    fn run_all(alg: Algorithm, g: &BipartiteGraph) -> (Vec<crate::Biclique>, Stats) {
        let mut sink = CollectSink::new();
        let mut stats = Stats::default();
        let mut builder = TaskBuilder::new(g);
        let mut engine = BaselineEngine::new(g, alg);
        for v in 0..g.num_v() {
            if let Some(t) = builder.build(v) {
                assert!(engine.run_task(&t, &mut sink, &mut stats).is_continue());
            }
        }
        let mut out = sink.into_vec();
        out.sort();
        (out, stats)
    }

    /// G0 has exactly 6 maximal bicliques (Fig. 1 of the background
    /// literature).
    #[test]
    fn g0_has_six_maximal_bicliques() {
        let g = g0();
        for alg in [Algorithm::MineLmbc, Algorithm::Mbea, Algorithm::Imbea] {
            let (bicliques, stats) = run_all(alg, &g);
            assert_eq!(bicliques.len(), 6, "{alg:?}");
            assert_eq!(stats.emitted, 6, "{alg:?}");
            // Spot-check two known ones: ({u1,u2},{v1,v2,v3}) and
            // ({u2,u4},{v2,v3,v4}).
            assert!(bicliques.iter().any(|b| b.left == [0, 1] && b.right == [0, 1, 2]));
            assert!(bicliques.iter().any(|b| b.left == [1, 3] && b.right == [1, 2, 3]));
        }
    }

    #[test]
    fn all_baselines_agree_on_g0() {
        let g = g0();
        let (a, _) = run_all(Algorithm::MineLmbc, &g);
        let (b, _) = run_all(Algorithm::Mbea, &g);
        let (c, _) = run_all(Algorithm::Imbea, &g);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn complete_bipartite_single_biclique() {
        // K(3,3): exactly one maximal biclique — the whole graph.
        let mut edges = Vec::new();
        for u in 0..3 {
            for v in 0..3 {
                edges.push((u, v));
            }
        }
        let g = BipartiteGraph::from_edges(3, 3, &edges).unwrap();
        for alg in [Algorithm::MineLmbc, Algorithm::Mbea, Algorithm::Imbea] {
            let (bicliques, _) = run_all(alg, &g);
            assert_eq!(bicliques.len(), 1, "{alg:?}");
            assert_eq!(bicliques[0].left, [0, 1, 2]);
            assert_eq!(bicliques[0].right, [0, 1, 2]);
        }
    }

    #[test]
    fn perfect_matching_enumerates_every_edge() {
        // A perfect matching of size n: every edge is its own maximal
        // biclique.
        let n = 6;
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, i)).collect();
        let g = BipartiteGraph::from_edges(n, n, &edges).unwrap();
        let (bicliques, _) = run_all(Algorithm::Mbea, &g);
        assert_eq!(bicliques.len(), n as usize);
        for (i, b) in bicliques.iter().enumerate() {
            assert_eq!(b.left, [i as u32]);
            assert_eq!(b.right, [i as u32]);
        }
    }

    #[test]
    fn star_graph() {
        // One U vertex adjacent to all of V: single maximal biclique.
        let g =
            BipartiteGraph::from_edges(1, 5, &[(0, 0), (0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let (bicliques, _) = run_all(Algorithm::Imbea, &g);
        assert_eq!(bicliques.len(), 1);
        assert_eq!(bicliques[0].right, [0, 1, 2, 3, 4]);
    }

    #[test]
    fn stop_is_honored() {
        let g = g0();
        let mut stats = Stats::default();
        let mut count = 0;
        let mut sink = crate::FnSink(|_: &[u32], _: &[u32]| {
            count += 1;
            if count < 2 {
                crate::sink::CONTINUE
            } else {
                crate::sink::STOP
            }
        });
        let mut builder = TaskBuilder::new(&g);
        let mut engine = BaselineEngine::new(&g, Algorithm::Mbea);
        let mut stopped = false;
        for v in 0..g.num_v() {
            if let Some(t) = builder.build(v) {
                if engine.run_task(&t, &mut sink, &mut stats).is_break() {
                    stopped = true;
                    break;
                }
            }
        }
        assert!(stopped);
        assert_eq!(count, 2);
    }
}
