//! The MBET engine: prefix-tree driven enumeration.
//!
//! Per enumeration node, the engine re-encodes every candidate's and
//! excluded vertex's local neighborhood as ranks within the node's `L` and
//! inserts them into two [`CandidateTrie`]s. The tries then answer the
//! node's three hot questions structurally (DESIGN.md §3.2):
//!
//! 1. **Equivalence batching** — candidates landing on the same trie node
//!    have identical local neighborhoods; only the smallest (the group
//!    *representative*) is branched on, the rest are provably redundant.
//!    The same argument deduplicates the excluded set, and, at the top
//!    level, whole root tasks ([`crate::task::root_representatives`]).
//! 2. **Maximality** — "is some excluded vertex adjacent to all of `L'`?"
//!    is one superset walk over the excluded trie.
//! 3. **Absorption** — "which candidates are adjacent to all of `L'`?" is
//!    a key-length test, shared per group rather than per candidate.
//!
//! Each of the three is independently switchable via [`MbetConfig`]; with
//! all three off the engine is branch-for-branch identical to MBEA, which
//! the test suite asserts down to the node counters.
//!
//! The hot path is allocation-free in steady state: keys and member lists
//! live in per-depth arenas (`Scratch`) that are reused across sibling
//! nodes, and the only per-node allocation is the `R'` vector that must
//! outlive the recursion.

use std::ops::ControlFlow;

use crate::checkpoint::ResumeTask;
use crate::metrics::Stats;
use crate::run::StopReason;
use crate::sink::BicliqueSink;
use crate::task::RootTask;
use crate::util;
use crate::MbetConfig;
use bigraph::BipartiteGraph;
use ptree::CandidateTrie;

/// A `(start, end)` range into one of the scratch arenas.
type Span = (u32, u32);

#[inline]
fn slice(arena: &[u32], s: Span) -> &[u32] {
    &arena[s.0 as usize..s.1 as usize]
}

/// One equivalence class of candidates at a node.
#[derive(Clone, Copy)]
struct Group {
    /// Local neighborhood as ranks within the node's `L` (into `keyar`).
    key: Span,
    /// Members (into `memar`), unordered.
    members: Span,
    /// Smallest member — the branch representative.
    rep: u32,
}

/// An excluded vertex with a non-empty local neighborhood.
#[derive(Clone, Copy)]
struct Excluded {
    v: u32,
    key: Span,
}

/// Per-depth scratch space, pooled so sibling nodes at the same depth
/// reuse allocations.
#[derive(Default)]
struct Scratch {
    ctrie_p: CandidateTrie,
    ctrie_q: CandidateTrie,
    /// Arena holding every group key and excluded key of this node.
    keyar: Vec<u32>,
    /// Arena holding every group's member list.
    memar: Vec<u32>,
    groups: Vec<Group>,
    q_list: Vec<Excluded>,
    ranks: Vec<u32>,
    absorbed: Vec<u32>,
    l_child: Vec<u32>,
    child_p: Vec<u32>,
    child_q: Vec<u32>,
}

/// The prefix-tree enumeration engine.
pub struct MbetEngine<'g> {
    g: &'g BipartiteGraph,
    cfg: MbetConfig,
    pool: Vec<Scratch>,
    /// Peak candidate-trie node count across the run (memory metric).
    peak_trie_nodes: usize,
    /// Unexplored subtrees captured while unwinding out of a stopped
    /// `run_task`/`run_node` call; drained via `take_frontier`.
    frontier: Vec<ResumeTask>,
    /// Deepest recursion the last `run_task`/`run_node` call reached.
    task_depth: usize,
}

impl<'g> MbetEngine<'g> {
    /// An engine over `g` with feature toggles `cfg`.
    pub fn new(g: &'g BipartiteGraph, cfg: MbetConfig) -> Self {
        MbetEngine {
            g,
            cfg,
            pool: Vec::new(),
            peak_trie_nodes: 0,
            frontier: Vec::new(),
            task_depth: 0,
        }
    }

    /// Deepest enumeration recursion the most recent
    /// [`run_task`](Self::run_task)/[`run_node`](Self::run_node) call
    /// reached (0 when the root emitted without branching).
    pub fn task_depth(&self) -> usize {
        self.task_depth
    }

    /// Takes the frontier captured by the last stopped call (empty if it
    /// ran to completion).
    pub(crate) fn take_frontier(&mut self) -> Vec<ResumeTask> {
        std::mem::take(&mut self.frontier)
    }

    /// Largest candidate-trie (nodes) observed, a proxy for the working-set
    /// memory of the prefix-tree machinery.
    pub fn peak_trie_nodes(&self) -> usize {
        self.peak_trie_nodes
    }

    /// Runs one root task. Breaks iff the sink (or the control plane
    /// gating it) requested a stop.
    pub fn run_task(
        &mut self,
        task: &RootTask,
        sink: &mut dyn BicliqueSink,
        stats: &mut Stats,
    ) -> ControlFlow<StopReason> {
        self.frontier.clear();
        self.task_depth = 0;
        self.expand(0, &task.l0, &[], task.v, &task.p0, &task.q0, sink, stats)
    }

    /// Runs an arbitrary unchecked node (used by the parallel driver's
    /// split tasks). Semantics identical to [`Self::run_task`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_node(
        &mut self,
        l: &[u32],
        r_parent: &[u32],
        v: u32,
        p: &[u32],
        q: &[u32],
        sink: &mut dyn BicliqueSink,
        stats: &mut Stats,
    ) -> ControlFlow<StopReason> {
        self.frontier.clear();
        self.task_depth = 0;
        self.expand(0, l, r_parent, v, p, q, sink, stats)
    }

    /// Expands the node reached by traversing `v`: `l_new` is already the
    /// child's `L`. Mirrors `BaselineEngine::expand` but runs the node
    /// body through the tries.
    #[allow(clippy::too_many_arguments)]
    fn expand(
        &mut self,
        depth: usize,
        l_new: &[u32],
        r_parent: &[u32],
        v: u32,
        untraversed: &[u32],
        traversed: &[u32],
        sink: &mut dyn BicliqueSink,
        stats: &mut Stats,
    ) -> ControlFlow<StopReason> {
        debug_assert!(!l_new.is_empty());

        // Hybrid fast path: below a handful of candidates the trie's
        // bookkeeping cannot pay for itself — plain scans win. The same
        // trade-off the literature makes for its representation threshold.
        if untraversed.len() <= SMALL_NODE_CANDIDATES {
            return self.expand_small(
                depth,
                l_new,
                r_parent,
                v,
                untraversed,
                traversed,
                sink,
                stats,
            );
        }
        stats.nodes += 1;
        self.task_depth = self.task_depth.max(depth);

        if self.pool.len() <= depth {
            self.pool.resize_with(depth + 1, Scratch::default);
        }
        let mut s = std::mem::take(&mut self.pool[depth]);
        s.ctrie_p.clear();
        s.ctrie_q.clear();
        s.keyar.clear();
        s.memar.clear();
        s.groups.clear();
        s.q_list.clear();

        // ---- Excluded vertices: key them, dedupe equivalents, and check
        // this node's maximality along the way.
        let mut covered = false;
        for &q in traversed {
            util::intersect_ranks(self.g.nbr_v(q), l_new, &mut s.ranks);
            crate::invariants::check_rank_key(&s.ranks, l_new.len());
            if s.ranks.is_empty() {
                continue; // can never cover any L'' ⊆ L'
            }
            if s.ranks.len() == l_new.len() {
                covered = true; // q adjacent to all of L'
                break;
            }
            let existed = if self.cfg.trie_maximality || self.cfg.batching {
                s.ctrie_q.insert(&s.ranks, q)
            } else {
                false
            };
            if !(existed && self.cfg.batching) {
                let start = s.keyar.len() as u32;
                s.keyar.extend_from_slice(&s.ranks);
                s.q_list.push(Excluded { v: q, key: (start, s.keyar.len() as u32) });
            }
        }
        if covered {
            stats.nonmaximal += 1;
            self.pool[depth] = s;
            return ControlFlow::Continue(());
        }

        // ---- Candidates: trie-group them by local neighborhood.
        for &w in untraversed {
            util::intersect_ranks(self.g.nbr_v(w), l_new, &mut s.ranks);
            crate::invariants::check_rank_key(&s.ranks, l_new.len());
            if s.ranks.is_empty() {
                continue;
            }
            s.ctrie_p.insert(&s.ranks, w);
        }
        self.peak_trie_nodes = self.peak_trie_nodes.max(s.ctrie_p.node_count());
        {
            let groups = &mut s.groups;
            let keyar = &mut s.keyar;
            let memar = &mut s.memar;
            let batching = self.cfg.batching;
            s.ctrie_p.for_each_group(|key, members| {
                let kstart = keyar.len() as u32;
                keyar.extend_from_slice(key);
                let kspan = (kstart, keyar.len() as u32);
                if batching {
                    let mstart = memar.len() as u32;
                    memar.extend_from_slice(members);
                    // A trie group always has members. xtask-allow: expect
                    let rep = members.iter().copied().min().expect("non-empty group");
                    groups.push(Group { key: kspan, members: (mstart, memar.len() as u32), rep });
                } else {
                    // Ablation mode: one singleton group per candidate so
                    // the branch structure matches MBEA exactly.
                    for &w in members {
                        let mstart = memar.len() as u32;
                        memar.push(w);
                        groups.push(Group {
                            key: kspan,
                            members: (mstart, memar.len() as u32),
                            rep: w,
                        });
                    }
                }
            });
        }
        // Process groups in representative-id order (determinism and
        // equivalence with the baselines' candidate order).
        s.groups.sort_unstable_by_key(|grp| grp.rep);
        crate::invariants::check_spans(
            s.keyar.len(),
            s.groups.iter().map(|grp| grp.key).chain(s.q_list.iter().map(|q| q.key)),
        );
        crate::invariants::check_spans(s.memar.len(), s.groups.iter().map(|grp| grp.members));

        // ---- Absorption for *this* node: candidates adjacent to all of
        // L' go straight into R'. Their key is the full rank range
        // 0..|L'|, so full coverage is a length test, paid once per group.
        s.absorbed.clear();
        {
            let memar = &s.memar;
            let absorbed = &mut s.absorbed;
            let full_len = l_new.len() as u32;
            s.groups.retain(|grp| {
                if grp.key.1 - grp.key.0 == full_len {
                    absorbed.extend_from_slice(slice(memar, grp.members));
                    false
                } else {
                    true
                }
            });
        }
        stats.absorbed += s.absorbed.len() as u64;

        // R' must outlive the recursion below: one true allocation per
        // emitted biclique.
        let mut r_new: Vec<u32> = Vec::with_capacity(r_parent.len() + 1 + s.absorbed.len());
        r_new.extend_from_slice(r_parent);
        r_new.push(v);
        r_new.extend_from_slice(&s.absorbed);
        r_new.sort_unstable();
        crate::invariants::check_node(self.g, l_new, &r_new);

        if let ControlFlow::Break(r) = sink.emit(l_new, &r_new) {
            self.pool[depth] = s;
            // A Break verdict means this emission was NOT delivered (the
            // control gate rejects before forwarding), so re-running the
            // whole node on resume delivers it exactly once.
            self.frontier.push(ResumeTask::Node {
                l: l_new.to_vec(),
                r_parent: r_parent.to_vec(),
                v,
                p: untraversed.to_vec(),
                q: traversed.to_vec(),
            });
            return ControlFlow::Break(r);
        }
        stats.emitted += 1;

        // ---- Branch on each group representative.
        let mut stop = None;
        for gi in 0..s.groups.len() {
            let grp = s.groups[gi];
            let key = slice(&s.keyar, grp.key);
            let n_members = (grp.members.1 - grp.members.0) as u64;
            stats.batched += n_members - 1;

            // Maximality of the child: some excluded vertex adjacent to
            // all of L'' = unrank(key)?
            let non_maximal = if self.cfg.trie_maximality {
                s.ctrie_q.any_superset(key)
            } else {
                s.q_list.iter().any(|q| setops::is_subset(key, slice(&s.keyar, q.key)))
            };
            if non_maximal {
                // A branch attempt that dies at the check — counted as a
                // node so `nodes = emitted + nonmaximal` holds for every
                // engine (the child `expand` is never entered).
                stats.nodes += 1;
                stats.nonmaximal += 1;
            } else {
                util::unrank(l_new, key, &mut s.l_child);

                // Child's candidate universe: the rest of this group
                // (equivalent to the representative, hence adjacent to all
                // of L'' — the child's full-coverage scan absorbs them into
                // its R'), plus members of later groups whose key shares a
                // rank with this key (the rest die at the child anyway).
                s.child_p.clear();
                s.child_p
                    .extend(slice(&s.memar, grp.members).iter().copied().filter(|&w| w != grp.rep));
                if self.cfg.trie_absorption {
                    // Per-group (not per-member) rank test.
                    for later in &s.groups[gi + 1..] {
                        if rank_keys_intersect(slice(&s.keyar, later.key), key) {
                            s.child_p.extend_from_slice(slice(&s.memar, later.members));
                        }
                    }
                } else {
                    for later in &s.groups[gi + 1..] {
                        for &w in slice(&s.memar, later.members) {
                            if setops::intersect_first(self.g.nbr_v(w), &s.l_child).is_some() {
                                s.child_p.push(w);
                            }
                        }
                    }
                }
                s.child_p.sort_unstable();

                s.child_q.clear();
                s.child_q.extend(
                    s.q_list
                        .iter()
                        .filter(|q| rank_keys_intersect(slice(&s.keyar, q.key), key))
                        .map(|q| q.v),
                );

                // Move the buffers out for the recursive call (the child
                // works in pool[depth + 1]); restore afterwards.
                let l_child = std::mem::take(&mut s.l_child);
                let child_p = std::mem::take(&mut s.child_p);
                let child_q = std::mem::take(&mut s.child_q);
                let cont = self.expand(
                    depth + 1,
                    &l_child,
                    &r_new,
                    grp.rep,
                    &child_p,
                    &child_q,
                    sink,
                    stats,
                );
                s.l_child = l_child;
                s.child_p = child_p;
                s.child_q = child_q;
                if let ControlFlow::Break(r) = cont {
                    // The broken child captured its own subtree; this
                    // level owes the checkpoint its untried groups.
                    self.capture_group_siblings(&s, l_new, &r_new, gi);
                    stop = Some(r);
                    break;
                }
            }

            // The representative becomes excluded for later groups.
            let existed = if self.cfg.trie_maximality || self.cfg.batching {
                s.ctrie_q.insert(key, grp.rep)
            } else {
                false
            };
            if !(existed && self.cfg.batching) {
                s.q_list.push(Excluded { v: grp.rep, key: grp.key });
            }
        }

        self.pool[depth] = s;
        match stop {
            Some(r) => ControlFlow::Break(r),
            None => ControlFlow::Continue(()),
        }
    }

    /// Pushes the untried groups `s.groups[broke_at + 1..]` as resume
    /// tasks. Each group's node branches on its representative with `p` =
    /// its co-members plus all later groups' members (a conservative
    /// superset — the child's candidate scan drops the irrelevant ones)
    /// and `q` = the current exclusions plus every earlier representative.
    fn capture_group_siblings(
        &mut self,
        s: &Scratch,
        l_new: &[u32],
        r_new: &[u32],
        broke_at: usize,
    ) {
        let mut q_accum: Vec<u32> = s.q_list.iter().map(|q| q.v).collect();
        q_accum.push(s.groups[broke_at].rep);
        for j in broke_at + 1..s.groups.len() {
            let grp = s.groups[j];
            let key = slice(&s.keyar, grp.key);
            // xtask-allow: hot-alloc-loop (cold checkpoint-capture path; each resume task owns its data)
            let mut l_child = Vec::new();
            util::unrank(l_new, key, &mut l_child);
            let mut p: Vec<u32> =
                slice(&s.memar, grp.members).iter().copied().filter(|&w| w != grp.rep).collect();
            for later in &s.groups[j + 1..] {
                p.extend_from_slice(slice(&s.memar, later.members));
            }
            p.sort_unstable();
            self.frontier.push(ResumeTask::Node {
                l: l_child,
                r_parent: r_new.to_vec(), // xtask-allow: hot-alloc-loop (owned by the resume task)
                v: grp.rep,
                p,
                q: q_accum.clone(), // xtask-allow: hot-alloc-loop (owned by the resume task)
            });
            q_accum.push(grp.rep);
        }
    }
}

/// `true` iff two sorted rank keys share an element.
fn rank_keys_intersect(a: &[u32], b: &[u32]) -> bool {
    setops::intersect_first(a, b).is_some()
}

/// Candidate count at or below which [`MbetEngine::expand`] switches to
/// plain scans. Chosen empirically on the benchmark analogues (see the
/// E4 ablation); the enumeration *result* is unaffected by the value.
const SMALL_NODE_CANDIDATES: usize = 4;

impl MbetEngine<'_> {
    /// Scan-based node processing for small candidate sets. Identical
    /// semantics (and counter accounting) to `BaselineEngine`'s MBEA
    /// path, but recursing back into [`Self::expand`] so larger
    /// descendants regain the trie machinery.
    #[allow(clippy::too_many_arguments)]
    fn expand_small(
        &mut self,
        depth: usize,
        l_new: &[u32],
        r_parent: &[u32],
        v: u32,
        untraversed: &[u32],
        traversed: &[u32],
        sink: &mut dyn BicliqueSink,
        stats: &mut Stats,
    ) -> ControlFlow<StopReason> {
        stats.nodes += 1;
        self.task_depth = self.task_depth.max(depth);
        for &q in traversed {
            if setops::is_subset(l_new, self.g.nbr_v(q)) {
                stats.nonmaximal += 1;
                return ControlFlow::Continue(());
            }
        }
        let mut absorbed: Vec<u32> = Vec::new();
        let mut p_new: Vec<u32> = Vec::new();
        for &w in untraversed {
            let common = setops::intersect_count(l_new, self.g.nbr_v(w));
            if common == l_new.len() {
                absorbed.push(w);
            } else if common > 0 {
                p_new.push(w);
            }
        }
        stats.absorbed += absorbed.len() as u64;
        let mut r_new: Vec<u32> = Vec::with_capacity(r_parent.len() + 1 + absorbed.len());
        r_new.extend_from_slice(r_parent);
        r_new.push(v);
        r_new.extend_from_slice(&absorbed);
        r_new.sort_unstable();
        crate::invariants::check_node(self.g, l_new, &r_new);
        if let ControlFlow::Break(r) = sink.emit(l_new, &r_new) {
            // Undelivered emission: re-run the whole node on resume.
            self.frontier.push(ResumeTask::Node {
                l: l_new.to_vec(),
                r_parent: r_parent.to_vec(),
                v,
                p: untraversed.to_vec(),
                q: traversed.to_vec(),
            });
            return ControlFlow::Break(r);
        }
        stats.emitted += 1;
        if p_new.is_empty() {
            return ControlFlow::Continue(());
        }
        let mut q_now: Vec<u32> = traversed
            .iter()
            .copied()
            .filter(|&q| setops::intersect_first(self.g.nbr_v(q), l_new).is_some())
            .collect();
        let mut l_child = Vec::new();
        for i in 0..p_new.len() {
            let w = p_new[i];
            setops::intersect_into(l_new, self.g.nbr_v(w), &mut l_child);
            let l_child_owned = std::mem::take(&mut l_child);
            if let ControlFlow::Break(r) = self.expand(
                depth + 1,
                &l_child_owned,
                &r_new,
                w,
                &p_new[i + 1..],
                &q_now,
                sink,
                stats,
            ) {
                self.capture_small_siblings(l_new, &r_new, &p_new, i, &q_now);
                return ControlFlow::Break(r);
            }
            l_child = l_child_owned;
            q_now.push(w);
        }
        ControlFlow::Continue(())
    }

    /// Scan-path sibling capture, mirroring the baseline engine's: pushes
    /// `p_new[broke_at + 1..]` with `q` grown by each earlier branch.
    fn capture_small_siblings(
        &mut self,
        l_parent: &[u32],
        r_new: &[u32],
        p_new: &[u32],
        broke_at: usize,
        q_now: &[u32],
    ) {
        let mut q_accum = q_now.to_vec();
        q_accum.push(p_new[broke_at]);
        for k in broke_at + 1..p_new.len() {
            let w = p_new[k];
            // xtask-allow: hot-alloc-loop (cold checkpoint-capture path; each resume task owns its data)
            let mut l_child = Vec::new();
            setops::intersect_into(l_parent, self.g.nbr_v(w), &mut l_child);
            self.frontier.push(ResumeTask::Node {
                l: l_child,
                r_parent: r_new.to_vec(), // xtask-allow: hot-alloc-loop (owned by the resume task)
                v: w,
                // xtask-allow: hot-alloc-loop (owned by the resume task)
                p: p_new[k + 1..].to_vec(),
                q: q_accum.clone(), // xtask-allow: hot-alloc-loop (owned by the resume task)
            });
            q_accum.push(w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CollectSink;
    use crate::task::TaskBuilder;
    use crate::{Algorithm, Biclique};

    fn g0() -> BipartiteGraph {
        BipartiteGraph::from_edges(
            5,
            4,
            &[
                (0, 0),
                (0, 1),
                (0, 2),
                (1, 0),
                (1, 1),
                (1, 2),
                (1, 3),
                (2, 1),
                (3, 1),
                (3, 2),
                (3, 3),
                (4, 3),
            ],
        )
        .unwrap()
    }

    fn run_mbet(g: &BipartiteGraph, cfg: MbetConfig) -> (Vec<Biclique>, Stats) {
        let mut sink = CollectSink::new();
        let mut stats = Stats::default();
        let mut builder = TaskBuilder::new(g);
        let mut engine = MbetEngine::new(g, cfg);
        for v in 0..g.num_v() {
            if let Some(t) = builder.build(v) {
                assert!(engine.run_task(&t, &mut sink, &mut stats).is_continue());
            }
        }
        let mut out = sink.into_vec();
        out.sort();
        (out, stats)
    }

    #[test]
    fn g0_six_bicliques_all_configs() {
        let g = g0();
        for batching in [false, true] {
            for trie_maximality in [false, true] {
                for trie_absorption in [false, true] {
                    let cfg = MbetConfig { batching, trie_maximality, trie_absorption };
                    let (bicliques, stats) = run_mbet(&g, cfg);
                    assert_eq!(bicliques.len(), 6, "{cfg:?}");
                    assert_eq!(stats.emitted, 6, "{cfg:?}");
                }
            }
        }
    }

    #[test]
    fn mbet_matches_mbea_counters_when_disabled() {
        let g = g0();
        let cfg = MbetConfig { batching: false, trie_maximality: false, trie_absorption: false };
        let (got, mbet_stats) = run_mbet(&g, cfg);

        let mut sink = CollectSink::new();
        let mut mbea_stats = Stats::default();
        let mut builder = TaskBuilder::new(&g);
        let mut engine = crate::baseline::BaselineEngine::new(&g, Algorithm::Mbea);
        for v in 0..g.num_v() {
            if let Some(t) = builder.build(v) {
                assert!(engine.run_task(&t, &mut sink, &mut mbea_stats).is_continue());
            }
        }
        let mut want = sink.into_vec();
        want.sort();
        assert_eq!(got, want);
        assert_eq!(mbet_stats.nodes, mbea_stats.nodes);
        assert_eq!(mbet_stats.nonmaximal, mbea_stats.nonmaximal);
        assert_eq!(mbet_stats.emitted, mbea_stats.emitted);
    }

    #[test]
    fn batching_reduces_work_on_duplicated_neighborhoods() {
        // v0 sees {u0,u1,u2}; v1..v5 all see exactly {u0,u1} — one
        // equivalence class of five candidates inside v0's subtree.
        let mut edges = vec![(0u32, 0u32), (1, 0), (2, 0)];
        for v in 1..=5 {
            edges.push((0, v));
            edges.push((1, v));
        }
        let g = BipartiteGraph::from_edges(3, 6, &edges).unwrap();
        let (b_on, s_on) = run_mbet(&g, MbetConfig::default());
        let (b_off, s_off) = run_mbet(&g, MbetConfig { batching: false, ..Default::default() });
        assert_eq!(b_on, b_off);
        // Two maximal bicliques: ({u0,u1,u2},{v0}) and ({u0,u1},{v0..v5}).
        assert_eq!(b_on.len(), 2);
        assert!(b_on.iter().any(|b| b.left == [0, 1] && b.right == [0, 1, 2, 3, 4, 5]));
        assert_eq!(s_on.batched, 4, "five equivalent candidates, one branch");
        assert!(s_on.nodes + s_on.nonmaximal < s_off.nodes + s_off.nonmaximal);
    }

    #[test]
    fn equivalent_partial_candidates_all_join_r() {
        // Regression: non-representative members of the expanded group
        // must end up in the child's R even though only the rep branches.
        let edges = vec![(0u32, 0u32), (1, 0), (2, 0), (0, 1), (1, 1), (0, 2), (1, 2)];
        let g = BipartiteGraph::from_edges(3, 3, &edges).unwrap();
        let (bicliques, _) = run_mbet(&g, MbetConfig::default());
        crate::verify::assert_matches_brute_force(&g, &bicliques);
        assert!(bicliques.iter().any(|b| b.left == [0, 1] && b.right == [0, 1, 2]));
    }

    #[test]
    fn stop_requested_mid_run() {
        let g = g0();
        let mut stats = Stats::default();
        let mut n = 0;
        let mut sink = crate::FnSink(|_: &[u32], _: &[u32]| {
            n += 1;
            crate::sink::STOP
        });
        let mut builder = TaskBuilder::new(&g);
        let mut engine = MbetEngine::new(&g, MbetConfig::default());
        let t = builder.build(0).unwrap();
        assert!(engine.run_task(&t, &mut sink, &mut stats).is_break());
        assert_eq!(n, 1);
    }

    #[test]
    fn peak_trie_nodes_is_tracked() {
        // Needs a node with more candidates than the small-node fast-path
        // threshold, or no trie is ever built: one root vertex whose
        // 2-hop universe has 8 partially-overlapping candidates.
        let mut edges = vec![(0u32, 0u32), (1, 0), (2, 0), (3, 0)];
        for v in 1..=8u32 {
            edges.push((v % 4, v));
            edges.push(((v + 1) % 4, v));
        }
        let g = BipartiteGraph::from_edges(4, 9, &edges).unwrap();
        let mut engine = MbetEngine::new(&g, MbetConfig::default());
        let mut sink = CollectSink::new();
        let mut stats = Stats::default();
        let mut builder = TaskBuilder::new(&g);
        for v in 0..g.num_v() {
            if let Some(t) = builder.build(v) {
                assert!(engine.run_task(&t, &mut sink, &mut stats).is_continue());
            }
        }
        assert!(engine.peak_trie_nodes() > 1);
        crate::verify::assert_matches_brute_force(&g, &sink.into_vec());
    }

    #[test]
    fn fast_path_threshold_boundary() {
        // Graphs straddling the SMALL_NODE_CANDIDATES boundary must agree
        // with brute force regardless of which path handles the root.
        for extra in 0..=(2 * SMALL_NODE_CANDIDATES as u32) {
            let mut edges = vec![(0u32, 0u32), (1, 0)];
            for v in 1..=(1 + extra) {
                edges.push((v % 3, v));
                edges.push(((v + 1) % 3, v));
            }
            let g = BipartiteGraph::from_edges(3, 2 + extra, &edges).unwrap();
            let (bicliques, _) = run_mbet(&g, MbetConfig::default());
            crate::verify::assert_matches_brute_force(&g, &bicliques);
        }
    }
}
