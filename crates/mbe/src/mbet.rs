//! The MBET engine: prefix-tree driven enumeration over per-root
//! localized subgraphs.
//!
//! Per root task (and per resumed node) the engine first **localizes**:
//! it builds a [`LocalGraph`] holding the induced subgraph on the
//! task's left universe and right vertices, densely relabeled on both
//! sides (see `bigraph::local` for the id-space rules). Everything the
//! recursion touches from then on — candidate keys, excluded keys, `L`
//! sets — lives in local ids; only `R'` (which must be reported),
//! emissions, and checkpoint frontiers are translated back to global
//! ids at the boundary. Localized rows are pre-clipped to `N(root)` and
//! may be bitmap-packed, so each per-node intersection picks the
//! cheapest representation through [`LocalGraph::row_view`] under the
//! engine's [`Kernel`] policy.
//!
//! Per enumeration node, the engine re-encodes every candidate's and
//! excluded vertex's local neighborhood as its intersection with the
//! node's `L` and inserts it into two [`CandidateTrie`]s. The tries
//! then answer the node's three hot questions structurally (DESIGN.md
//! §3.2):
//!
//! 1. **Equivalence batching** — candidates landing on the same trie node
//!    have identical local neighborhoods; only the smallest (the group
//!    *representative*) is branched on, the rest are provably redundant.
//!    The same argument deduplicates the excluded set, and, at the top
//!    level, whole root tasks ([`crate::task::root_representatives`]).
//! 2. **Maximality** — "is some excluded vertex adjacent to all of `L'`?"
//!    is one superset walk over the excluded trie.
//! 3. **Absorption** — "which candidates are adjacent to all of `L'`?" is
//!    a key-length test, shared per group rather than per candidate.
//!
//! Each of the three is independently switchable via [`MbetConfig`]; with
//! all three off the engine is branch-for-branch identical to MBEA, which
//! the test suite asserts down to the node counters. (Local ids are
//! order-isomorphic to global ids, so localization never changes a
//! tie-break or a branch.)
//!
//! The hot path is allocation-free in steady state: keys and member lists
//! live in per-depth arenas (`Scratch`) that are reused across sibling
//! nodes, and the only per-node allocation is the `R'` vector that must
//! outlive the recursion.

use std::ops::ControlFlow;

use crate::checkpoint::ResumeTask;
use crate::metrics::Stats;
use crate::run::StopReason;
use crate::sink::BicliqueSink;
use crate::task::RootTask;
use crate::MbetConfig;
use bigraph::{BipartiteGraph, LocalGraph};
use ptree::CandidateTrie;
use setops::Kernel;

/// A `(start, end)` range into one of the scratch arenas.
type Span = (u32, u32);

#[inline]
fn slice(arena: &[u32], s: Span) -> &[u32] {
    &arena[s.0 as usize..s.1 as usize]
}

/// One equivalence class of candidates at a node.
#[derive(Clone, Copy)]
struct Group {
    /// Local neighborhood as local left ids `⊆ L` (into `keyar`).
    key: Span,
    /// Members (into `memar`), unordered.
    members: Span,
    /// Smallest member — the branch representative.
    rep: u32,
}

/// An excluded vertex with a non-empty local neighborhood.
#[derive(Clone, Copy)]
struct Excluded {
    v: u32,
    key: Span,
}

/// Per-depth scratch space, pooled so sibling nodes at the same depth
/// reuse allocations.
#[derive(Default)]
struct Scratch {
    ctrie_p: CandidateTrie,
    ctrie_q: CandidateTrie,
    /// Arena holding every group key and excluded key of this node.
    keyar: Vec<u32>,
    /// Arena holding every group's member list.
    memar: Vec<u32>,
    groups: Vec<Group>,
    q_list: Vec<Excluded>,
    keybuf: Vec<u32>,
    absorbed: Vec<u32>,
    l_child: Vec<u32>,
    child_p: Vec<u32>,
    child_q: Vec<u32>,
    /// The node's `L` translated back to global ids for emission.
    emit_l: Vec<u32>,
}

/// The prefix-tree enumeration engine.
pub struct MbetEngine<'g> {
    g: &'g BipartiteGraph,
    cfg: MbetConfig,
    /// Per-task localized subgraph; rebuilt by `run_task`/`run_node`,
    /// its buffers reused across tasks.
    local: LocalGraph,
    pool: Vec<Scratch>,
    /// Peak candidate-trie node count across the run (memory metric).
    peak_trie_nodes: usize,
    /// Unexplored subtrees captured while unwinding out of a stopped
    /// `run_task`/`run_node` call; drained via `take_frontier`.
    frontier: Vec<ResumeTask>,
    /// Deepest recursion the last `run_task`/`run_node` call reached.
    task_depth: usize,
    /// Reused staging buffers for the per-task localization.
    rights_buf: Vec<u32>,
    root_l: Vec<u32>,
    root_p: Vec<u32>,
    root_q: Vec<u32>,
}

impl<'g> MbetEngine<'g> {
    /// An engine over `g` with feature toggles `cfg`, using the
    /// intersection kernels permitted by `kernel`.
    pub fn new(g: &'g BipartiteGraph, cfg: MbetConfig, kernel: Kernel) -> Self {
        MbetEngine {
            g,
            cfg,
            local: LocalGraph::new(kernel),
            pool: Vec::new(),
            peak_trie_nodes: 0,
            frontier: Vec::new(),
            task_depth: 0,
            rights_buf: Vec::new(),
            root_l: Vec::new(),
            root_p: Vec::new(),
            root_q: Vec::new(),
        }
    }

    /// Deepest enumeration recursion the most recent
    /// [`run_task`](Self::run_task)/[`run_node`](Self::run_node) call
    /// reached (0 when the root emitted without branching).
    pub fn task_depth(&self) -> usize {
        self.task_depth
    }

    /// Takes the frontier captured by the last stopped call (empty if it
    /// ran to completion).
    pub(crate) fn take_frontier(&mut self) -> Vec<ResumeTask> {
        std::mem::take(&mut self.frontier)
    }

    /// Largest candidate-trie (nodes) observed, a proxy for the working-set
    /// memory of the prefix-tree machinery.
    pub fn peak_trie_nodes(&self) -> usize {
        self.peak_trie_nodes
    }

    /// Runs one root task (global ids in, global ids emitted). Breaks
    /// iff the sink (or the control plane gating it) requested a stop.
    pub fn run_task(
        &mut self,
        task: &RootTask,
        sink: &mut dyn BicliqueSink,
        stats: &mut Stats,
    ) -> ControlFlow<StopReason> {
        self.frontier.clear();
        self.task_depth = 0;
        // The task's right universe, `q0 ∪ {v} ∪ p0`, is already sorted:
        // the task builder guarantees q0 < v < p0.
        self.rights_buf.clear();
        self.rights_buf.extend_from_slice(&task.q0);
        self.rights_buf.push(task.v);
        self.rights_buf.extend_from_slice(&task.p0);
        debug_assert!(setops::is_strictly_increasing(&self.rights_buf));
        self.local.localize(self.g, &task.l0, &self.rights_buf);
        crate::invariants::check_localization(self.g, &self.local);

        // Local ids are ranks in the sorted universes, so the three
        // slices are contiguous ranges.
        let nq = task.q0.len() as u32;
        self.root_l.clear();
        self.root_l.extend(0..task.l0.len() as u32);
        self.root_q.clear();
        self.root_q.extend(0..nq);
        self.root_p.clear();
        self.root_p.extend(nq + 1..self.rights_buf.len() as u32);

        let l = std::mem::take(&mut self.root_l);
        let p = std::mem::take(&mut self.root_p);
        let q = std::mem::take(&mut self.root_q);
        let flow = self.expand(0, &l, &[], nq, &p, &q, sink, stats);
        self.root_l = l;
        self.root_p = p;
        self.root_q = q;
        flow
    }

    /// Runs an arbitrary unchecked node, given in global ids (used by
    /// the parallel driver's split tasks and checkpoint resume).
    /// Semantics identical to [`Self::run_task`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_node(
        &mut self,
        l: &[u32],
        r_parent: &[u32],
        v: u32,
        p: &[u32],
        q: &[u32],
        sink: &mut dyn BicliqueSink,
        stats: &mut Stats,
    ) -> ControlFlow<StopReason> {
        self.frontier.clear();
        self.task_depth = 0;
        // Arbitrary caller input: sort the right universe defensively.
        self.rights_buf.clear();
        self.rights_buf.extend_from_slice(q);
        self.rights_buf.extend_from_slice(p);
        self.rights_buf.push(v);
        self.rights_buf.sort_unstable();
        self.rights_buf.dedup();
        self.local.localize(self.g, l, &self.rights_buf);
        crate::invariants::check_localization(self.g, &self.local);

        self.root_l.clear();
        self.root_l.extend(0..l.len() as u32);
        self.root_p.clear();
        for &w in p {
            self.root_p.push(self.rlocal(w));
        }
        self.root_q.clear();
        for &w in q {
            self.root_q.push(self.rlocal(w));
        }
        let v_local = self.rlocal(v);

        let l = std::mem::take(&mut self.root_l);
        let p = std::mem::take(&mut self.root_p);
        let q = std::mem::take(&mut self.root_q);
        let flow = self.expand(0, &l, r_parent, v_local, &p, &q, sink, stats);
        self.root_l = l;
        self.root_p = p;
        self.root_q = q;
        flow
    }

    /// Local id of a right vertex known to be inside the current
    /// localization (callers only look up members of the `rights` slice
    /// the localization was just built from, so the search cannot miss).
    #[inline]
    fn rlocal(&self, w: u32) -> u32 {
        // xtask-allow: expect
        self.local.right_local(w).expect("vertex missing from localization")
    }

    /// A [`ResumeTask::Node`] for the current node, translated back to
    /// global ids — checkpoints never leak local ids. `l_global` is the
    /// already-translated `L`; `v`/`p`/`q` are local right ids.
    fn node_resume(
        &self,
        l_global: &[u32],
        r_parent: &[u32],
        v: u32,
        p: &[u32],
        q: &[u32],
    ) -> ResumeTask {
        ResumeTask::Node {
            l: l_global.to_vec(),
            r_parent: r_parent.to_vec(),
            v: self.local.right_global(v),
            p: p.iter().map(|&w| self.local.right_global(w)).collect(),
            q: q.iter().map(|&w| self.local.right_global(w)).collect(),
        }
    }

    /// Expands the node reached by traversing `v`: `l_new` is already the
    /// child's `L`. All of `l_new`/`v`/`untraversed`/`traversed` are
    /// local ids; `r_parent` is global. Mirrors `BaselineEngine::expand`
    /// but runs the node body through the tries.
    #[allow(clippy::too_many_arguments)]
    fn expand(
        &mut self,
        depth: usize,
        l_new: &[u32],
        r_parent: &[u32],
        v: u32,
        untraversed: &[u32],
        traversed: &[u32],
        sink: &mut dyn BicliqueSink,
        stats: &mut Stats,
    ) -> ControlFlow<StopReason> {
        debug_assert!(!l_new.is_empty());

        // Hybrid fast path: below a handful of candidates the trie's
        // bookkeeping cannot pay for itself — plain scans win. The same
        // trade-off the literature makes for its representation threshold.
        if untraversed.len() <= SMALL_NODE_CANDIDATES {
            return self.expand_small(
                depth,
                l_new,
                r_parent,
                v,
                untraversed,
                traversed,
                sink,
                stats,
            );
        }
        stats.nodes += 1;
        self.task_depth = self.task_depth.max(depth);

        if self.pool.len() <= depth {
            self.pool.resize_with(depth + 1, Scratch::default);
        }
        let mut s = std::mem::take(&mut self.pool[depth]);
        s.ctrie_p.clear();
        s.ctrie_q.clear();
        s.keyar.clear();
        s.memar.clear();
        s.groups.clear();
        s.q_list.clear();

        // ---- Excluded vertices: key them, dedupe equivalents, and check
        // this node's maximality along the way. A key is the vertex's
        // localized row clipped to `L'` — local left ids, so keys of one
        // node share an id space and one representation check
        // (`check_local_key`) covers both kernels.
        let mut covered = false;
        for &q in traversed {
            self.local.row_view(q, l_new.len()).intersect_into(l_new, &mut s.keybuf);
            crate::invariants::check_local_key(&s.keybuf, l_new);
            if s.keybuf.is_empty() {
                continue; // can never cover any L'' ⊆ L'
            }
            if s.keybuf.len() == l_new.len() {
                covered = true; // q adjacent to all of L'
                break;
            }
            let existed = if self.cfg.trie_maximality || self.cfg.batching {
                s.ctrie_q.insert(&s.keybuf, q)
            } else {
                false
            };
            if !(existed && self.cfg.batching) {
                let start = s.keyar.len() as u32;
                s.keyar.extend_from_slice(&s.keybuf);
                s.q_list.push(Excluded { v: q, key: (start, s.keyar.len() as u32) });
            }
        }
        if covered {
            stats.nonmaximal += 1;
            self.pool[depth] = s;
            return ControlFlow::Continue(());
        }

        // ---- Candidates: trie-group them by local neighborhood.
        for &w in untraversed {
            self.local.row_view(w, l_new.len()).intersect_into(l_new, &mut s.keybuf);
            crate::invariants::check_local_key(&s.keybuf, l_new);
            if s.keybuf.is_empty() {
                continue;
            }
            s.ctrie_p.insert(&s.keybuf, w);
        }
        self.peak_trie_nodes = self.peak_trie_nodes.max(s.ctrie_p.node_count());
        {
            let groups = &mut s.groups;
            let keyar = &mut s.keyar;
            let memar = &mut s.memar;
            let batching = self.cfg.batching;
            s.ctrie_p.for_each_group(|key, members| {
                let kstart = keyar.len() as u32;
                keyar.extend_from_slice(key);
                let kspan = (kstart, keyar.len() as u32);
                if batching {
                    let mstart = memar.len() as u32;
                    memar.extend_from_slice(members);
                    // A trie group always has members. xtask-allow: expect
                    let rep = members.iter().copied().min().expect("non-empty group");
                    groups.push(Group { key: kspan, members: (mstart, memar.len() as u32), rep });
                } else {
                    // Ablation mode: one singleton group per candidate so
                    // the branch structure matches MBEA exactly.
                    for &w in members {
                        let mstart = memar.len() as u32;
                        memar.push(w);
                        groups.push(Group {
                            key: kspan,
                            members: (mstart, memar.len() as u32),
                            rep: w,
                        });
                    }
                }
            });
        }
        // Process groups in representative-id order (determinism and
        // equivalence with the baselines' candidate order — local right
        // order is global right order).
        s.groups.sort_unstable_by_key(|grp| grp.rep);
        crate::invariants::check_spans(
            s.keyar.len(),
            s.groups.iter().map(|grp| grp.key).chain(s.q_list.iter().map(|q| q.key)),
        );
        crate::invariants::check_spans(s.memar.len(), s.groups.iter().map(|grp| grp.members));

        // ---- Absorption for *this* node: candidates adjacent to all of
        // L' go straight into R'. Their key is all of L', so full
        // coverage is a length test, paid once per group.
        s.absorbed.clear();
        {
            let memar = &s.memar;
            let absorbed = &mut s.absorbed;
            let full_len = l_new.len() as u32;
            s.groups.retain(|grp| {
                if grp.key.1 - grp.key.0 == full_len {
                    absorbed.extend_from_slice(slice(memar, grp.members));
                    false
                } else {
                    true
                }
            });
        }
        stats.absorbed += s.absorbed.len() as u64;

        // R' lives in global ids (it outlives this localization): map
        // the absorbed candidates home before they join it. One true
        // allocation per emitted biclique.
        for w in &mut s.absorbed {
            *w = self.local.right_global(*w);
        }
        let r_new = crate::task::assemble_r(r_parent, self.local.right_global(v), &s.absorbed);
        self.local.left_to_global(l_new, &mut s.emit_l);
        crate::invariants::check_node(self.g, &s.emit_l, &r_new);

        if let ControlFlow::Break(r) = sink.emit(&s.emit_l, &r_new) {
            // A Break verdict means this emission was NOT delivered (the
            // control gate rejects before forwarding), so re-running the
            // whole node on resume delivers it exactly once.
            let resume = self.node_resume(&s.emit_l, r_parent, v, untraversed, traversed);
            self.frontier.push(resume);
            self.pool[depth] = s;
            return ControlFlow::Break(r);
        }
        stats.emitted += 1;

        // ---- Branch on each group representative.
        let mut stop = None;
        for gi in 0..s.groups.len() {
            let grp = s.groups[gi];
            let key = slice(&s.keyar, grp.key);
            let n_members = (grp.members.1 - grp.members.0) as u64;
            stats.batched += n_members - 1;

            // Maximality of the child: some excluded vertex adjacent to
            // all of L'' = key?
            let non_maximal = if self.cfg.trie_maximality {
                s.ctrie_q.any_superset(key)
            } else {
                s.q_list.iter().any(|q| setops::is_subset(key, slice(&s.keyar, q.key)))
            };
            if non_maximal {
                // A branch attempt that dies at the check — counted as a
                // node so `nodes = emitted + nonmaximal` holds for every
                // engine (the child `expand` is never entered).
                stats.nodes += 1;
                stats.nonmaximal += 1;
            } else {
                // The key *is* the child's L, already in local left ids.
                s.l_child.clear();
                s.l_child.extend_from_slice(key);

                // Child's candidate universe: the rest of this group
                // (equivalent to the representative, hence adjacent to all
                // of L'' — the child's full-coverage scan absorbs them into
                // its R'), plus members of later groups whose key shares a
                // vertex with this key (the rest die at the child anyway).
                s.child_p.clear();
                s.child_p
                    .extend(slice(&s.memar, grp.members).iter().copied().filter(|&w| w != grp.rep));
                if self.cfg.trie_absorption {
                    // Per-group (not per-member) key test.
                    for later in &s.groups[gi + 1..] {
                        if local_keys_intersect(slice(&s.keyar, later.key), key) {
                            s.child_p.extend_from_slice(slice(&s.memar, later.members));
                        }
                    }
                } else {
                    for later in &s.groups[gi + 1..] {
                        for &w in slice(&s.memar, later.members) {
                            if self
                                .local
                                .row_view(w, s.l_child.len())
                                .intersect_first(&s.l_child)
                                .is_some()
                            {
                                s.child_p.push(w);
                            }
                        }
                    }
                }
                s.child_p.sort_unstable();

                s.child_q.clear();
                s.child_q.extend(
                    s.q_list
                        .iter()
                        .filter(|q| local_keys_intersect(slice(&s.keyar, q.key), key))
                        .map(|q| q.v),
                );

                // Move the buffers out for the recursive call (the child
                // works in pool[depth + 1]); restore afterwards.
                let l_child = std::mem::take(&mut s.l_child);
                let child_p = std::mem::take(&mut s.child_p);
                let child_q = std::mem::take(&mut s.child_q);
                let cont = self.expand(
                    depth + 1,
                    &l_child,
                    &r_new,
                    grp.rep,
                    &child_p,
                    &child_q,
                    sink,
                    stats,
                );
                s.l_child = l_child;
                s.child_p = child_p;
                s.child_q = child_q;
                if let ControlFlow::Break(r) = cont {
                    // The broken child captured its own subtree; this
                    // level owes the checkpoint its untried groups.
                    self.capture_group_siblings(&s, &r_new, gi);
                    stop = Some(r);
                    break;
                }
            }

            // The representative becomes excluded for later groups.
            let existed = if self.cfg.trie_maximality || self.cfg.batching {
                s.ctrie_q.insert(key, grp.rep)
            } else {
                false
            };
            if !(existed && self.cfg.batching) {
                s.q_list.push(Excluded { v: grp.rep, key: grp.key });
            }
        }

        self.pool[depth] = s;
        match stop {
            Some(r) => ControlFlow::Break(r),
            None => ControlFlow::Continue(()),
        }
    }

    /// Pushes the untried groups `s.groups[broke_at + 1..]` as resume
    /// tasks, translated to global ids. Each group's node branches on its
    /// representative with `p` = its co-members plus all later groups'
    /// members (a conservative superset — the child's candidate scan
    /// drops the irrelevant ones) and `q` = the current exclusions plus
    /// every earlier representative.
    fn capture_group_siblings(&mut self, s: &Scratch, r_new: &[u32], broke_at: usize) {
        let mut q_accum: Vec<u32> = s.q_list.iter().map(|q| self.local.right_global(q.v)).collect();
        q_accum.push(self.local.right_global(s.groups[broke_at].rep));
        for j in broke_at + 1..s.groups.len() {
            let grp = s.groups[j];
            let key = slice(&s.keyar, grp.key);
            // xtask-allow: hot-alloc-loop (cold checkpoint-capture path; each resume task owns its data)
            let mut l_child = Vec::new();
            self.local.left_to_global(key, &mut l_child);
            let mut p: Vec<u32> = slice(&s.memar, grp.members)
                .iter()
                .copied()
                .filter(|&w| w != grp.rep)
                .map(|w| self.local.right_global(w))
                .collect();
            for later in &s.groups[j + 1..] {
                p.extend(
                    slice(&s.memar, later.members).iter().map(|&w| self.local.right_global(w)),
                );
            }
            p.sort_unstable();
            self.frontier.push(ResumeTask::Node {
                l: l_child,
                r_parent: r_new.to_vec(), // xtask-allow: hot-alloc-loop (owned by the resume task)
                v: self.local.right_global(grp.rep),
                p,
                q: q_accum.clone(), // xtask-allow: hot-alloc-loop (owned by the resume task)
            });
            q_accum.push(self.local.right_global(grp.rep));
        }
    }
}

/// `true` iff two sorted local-left-id keys share an element.
fn local_keys_intersect(a: &[u32], b: &[u32]) -> bool {
    setops::intersect_first(a, b).is_some()
}

/// Candidate count at or below which [`MbetEngine::expand`] switches to
/// plain scans. Chosen empirically on the benchmark analogues (see the
/// E4 ablation); the enumeration *result* is unaffected by the value.
const SMALL_NODE_CANDIDATES: usize = 4;

impl MbetEngine<'_> {
    /// Scan-based node processing for small candidate sets. Identical
    /// semantics (and counter accounting) to `BaselineEngine`'s MBEA
    /// path — it runs the same shared expansion helpers, only against
    /// the localized rows — but recursing back into [`Self::expand`] so
    /// larger descendants regain the trie machinery.
    #[allow(clippy::too_many_arguments)]
    fn expand_small(
        &mut self,
        depth: usize,
        l_new: &[u32],
        r_parent: &[u32],
        v: u32,
        untraversed: &[u32],
        traversed: &[u32],
        sink: &mut dyn BicliqueSink,
        stats: &mut Stats,
    ) -> ControlFlow<StopReason> {
        stats.nodes += 1;
        self.task_depth = self.task_depth.max(depth);
        if crate::task::covered_by_excluded(&self.local, traversed, l_new) {
            stats.nonmaximal += 1;
            return ControlFlow::Continue(());
        }
        let mut absorbed: Vec<u32> = Vec::new();
        let mut p_new: Vec<u32> = Vec::new();
        crate::task::partition_candidates(
            &self.local,
            untraversed,
            l_new,
            &mut absorbed,
            &mut p_new,
        );
        stats.absorbed += absorbed.len() as u64;
        for w in &mut absorbed {
            *w = self.local.right_global(*w);
        }
        let r_new = crate::task::assemble_r(r_parent, self.local.right_global(v), &absorbed);
        let mut emit_l = Vec::new();
        self.local.left_to_global(l_new, &mut emit_l);
        crate::invariants::check_node(self.g, &emit_l, &r_new);
        if let ControlFlow::Break(r) = sink.emit(&emit_l, &r_new) {
            // Undelivered emission: re-run the whole node on resume.
            let resume = self.node_resume(&emit_l, r_parent, v, untraversed, traversed);
            self.frontier.push(resume);
            return ControlFlow::Break(r);
        }
        stats.emitted += 1;
        if p_new.is_empty() {
            return ControlFlow::Continue(());
        }
        let mut q_now: Vec<u32> = Vec::new();
        crate::task::live_excluded(&self.local, traversed, l_new, &mut q_now);
        let mut l_child = Vec::new();
        for i in 0..p_new.len() {
            let w = p_new[i];
            crate::task::child_l(&self.local, l_new, w, &mut l_child);
            let l_child_owned = std::mem::take(&mut l_child);
            if let ControlFlow::Break(r) = self.expand(
                depth + 1,
                &l_child_owned,
                &r_new,
                w,
                &p_new[i + 1..],
                &q_now,
                sink,
                stats,
            ) {
                self.capture_small_siblings(l_new, &r_new, &p_new, i, &q_now);
                return ControlFlow::Break(r);
            }
            l_child = l_child_owned;
            q_now.push(w);
        }
        ControlFlow::Continue(())
    }

    /// Scan-path sibling capture, mirroring the baseline engine's: pushes
    /// `p_new[broke_at + 1..]` with `q` grown by each earlier branch, all
    /// translated to global ids.
    fn capture_small_siblings(
        &mut self,
        l_parent: &[u32],
        r_new: &[u32],
        p_new: &[u32],
        broke_at: usize,
        q_now: &[u32],
    ) {
        let mut q_accum: Vec<u32> = q_now.iter().map(|&q| self.local.right_global(q)).collect();
        q_accum.push(self.local.right_global(p_new[broke_at]));
        let mut l_local = Vec::new();
        for k in broke_at + 1..p_new.len() {
            let w = p_new[k];
            crate::task::child_l(&self.local, l_parent, w, &mut l_local);
            // xtask-allow: hot-alloc-loop (cold checkpoint-capture path; each resume task owns its data)
            let mut l_child = Vec::new();
            self.local.left_to_global(&l_local, &mut l_child);
            self.frontier.push(ResumeTask::Node {
                l: l_child,
                r_parent: r_new.to_vec(), // xtask-allow: hot-alloc-loop (owned by the resume task)
                v: self.local.right_global(w),
                // xtask-allow: hot-alloc-loop (owned by the resume task)
                p: p_new[k + 1..].iter().map(|&x| self.local.right_global(x)).collect(),
                q: q_accum.clone(), // xtask-allow: hot-alloc-loop (owned by the resume task)
            });
            q_accum.push(self.local.right_global(w));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CollectSink;
    use crate::task::TaskBuilder;
    use crate::{Algorithm, Biclique};

    fn g0() -> BipartiteGraph {
        BipartiteGraph::from_edges(
            5,
            4,
            &[
                (0, 0),
                (0, 1),
                (0, 2),
                (1, 0),
                (1, 1),
                (1, 2),
                (1, 3),
                (2, 1),
                (3, 1),
                (3, 2),
                (3, 3),
                (4, 3),
            ],
        )
        .unwrap()
    }

    fn run_mbet_kernel(
        g: &BipartiteGraph,
        cfg: MbetConfig,
        kernel: Kernel,
    ) -> (Vec<Biclique>, Stats) {
        let mut sink = CollectSink::new();
        let mut stats = Stats::default();
        let mut builder = TaskBuilder::new(g);
        let mut engine = MbetEngine::new(g, cfg, kernel);
        for v in 0..g.num_v() {
            if let Some(t) = builder.build(v) {
                assert!(engine.run_task(&t, &mut sink, &mut stats).is_continue());
            }
        }
        let mut out = sink.into_vec();
        out.sort();
        (out, stats)
    }

    fn run_mbet(g: &BipartiteGraph, cfg: MbetConfig) -> (Vec<Biclique>, Stats) {
        run_mbet_kernel(g, cfg, Kernel::Adaptive)
    }

    #[test]
    fn g0_six_bicliques_all_configs() {
        let g = g0();
        for batching in [false, true] {
            for trie_maximality in [false, true] {
                for trie_absorption in [false, true] {
                    let cfg = MbetConfig { batching, trie_maximality, trie_absorption };
                    let (bicliques, stats) = run_mbet(&g, cfg);
                    assert_eq!(bicliques.len(), 6, "{cfg:?}");
                    assert_eq!(stats.emitted, 6, "{cfg:?}");
                }
            }
        }
    }

    #[test]
    fn kernels_agree_bicliques_and_counters() {
        let g = g0();
        let base = run_mbet_kernel(&g, MbetConfig::default(), Kernel::SortedOnly);
        for kernel in [Kernel::Adaptive, Kernel::BitmapOnly] {
            let got = run_mbet_kernel(&g, MbetConfig::default(), kernel);
            assert_eq!(got.0, base.0, "{kernel:?}");
            assert_eq!(got.1.nodes, base.1.nodes, "{kernel:?}");
            assert_eq!(got.1.emitted, base.1.emitted, "{kernel:?}");
            assert_eq!(got.1.nonmaximal, base.1.nonmaximal, "{kernel:?}");
            assert_eq!(got.1.batched, base.1.batched, "{kernel:?}");
        }
    }

    #[test]
    fn mbet_matches_mbea_counters_when_disabled() {
        let g = g0();
        let cfg = MbetConfig { batching: false, trie_maximality: false, trie_absorption: false };
        let (got, mbet_stats) = run_mbet(&g, cfg);

        let mut sink = CollectSink::new();
        let mut mbea_stats = Stats::default();
        let mut builder = TaskBuilder::new(&g);
        let mut engine = crate::baseline::BaselineEngine::new(&g, Algorithm::Mbea);
        for v in 0..g.num_v() {
            if let Some(t) = builder.build(v) {
                assert!(engine.run_task(&t, &mut sink, &mut mbea_stats).is_continue());
            }
        }
        let mut want = sink.into_vec();
        want.sort();
        assert_eq!(got, want);
        assert_eq!(mbet_stats.nodes, mbea_stats.nodes);
        assert_eq!(mbet_stats.nonmaximal, mbea_stats.nonmaximal);
        assert_eq!(mbet_stats.emitted, mbea_stats.emitted);
    }

    #[test]
    fn batching_reduces_work_on_duplicated_neighborhoods() {
        // v0 sees {u0,u1,u2}; v1..v5 all see exactly {u0,u1} — one
        // equivalence class of five candidates inside v0's subtree.
        let mut edges = vec![(0u32, 0u32), (1, 0), (2, 0)];
        for v in 1..=5 {
            edges.push((0, v));
            edges.push((1, v));
        }
        let g = BipartiteGraph::from_edges(3, 6, &edges).unwrap();
        let (b_on, s_on) = run_mbet(&g, MbetConfig::default());
        let (b_off, s_off) = run_mbet(&g, MbetConfig { batching: false, ..Default::default() });
        assert_eq!(b_on, b_off);
        // Two maximal bicliques: ({u0,u1,u2},{v0}) and ({u0,u1},{v0..v5}).
        assert_eq!(b_on.len(), 2);
        assert!(b_on.iter().any(|b| b.left == [0, 1] && b.right == [0, 1, 2, 3, 4, 5]));
        assert_eq!(s_on.batched, 4, "five equivalent candidates, one branch");
        assert!(s_on.nodes + s_on.nonmaximal < s_off.nodes + s_off.nonmaximal);
    }

    #[test]
    fn equivalent_partial_candidates_all_join_r() {
        // Regression: non-representative members of the expanded group
        // must end up in the child's R even though only the rep branches.
        let edges = vec![(0u32, 0u32), (1, 0), (2, 0), (0, 1), (1, 1), (0, 2), (1, 2)];
        let g = BipartiteGraph::from_edges(3, 3, &edges).unwrap();
        let (bicliques, _) = run_mbet(&g, MbetConfig::default());
        crate::verify::assert_matches_brute_force(&g, &bicliques);
        assert!(bicliques.iter().any(|b| b.left == [0, 1] && b.right == [0, 1, 2]));
    }

    #[test]
    fn stop_requested_mid_run() {
        let g = g0();
        let mut stats = Stats::default();
        let mut n = 0;
        let mut sink = crate::FnSink(|_: &[u32], _: &[u32]| {
            n += 1;
            crate::sink::STOP
        });
        let mut builder = TaskBuilder::new(&g);
        let mut engine = MbetEngine::new(&g, MbetConfig::default(), Kernel::Adaptive);
        let t = builder.build(0).unwrap();
        assert!(engine.run_task(&t, &mut sink, &mut stats).is_break());
        assert_eq!(n, 1);
    }

    #[test]
    fn captured_frontier_is_global_ids() {
        // Stop at the first emission of a root with candidates: the
        // captured resume tasks must be valid *global* right ids with
        // global L sets, even though the engine ran on local ids.
        let g = g0();
        let mut stats = Stats::default();
        let mut sink = crate::FnSink(|_: &[u32], _: &[u32]| crate::sink::STOP);
        let mut builder = TaskBuilder::new(&g);
        let mut engine = MbetEngine::new(&g, MbetConfig::default(), Kernel::Adaptive);
        let t = builder.build(0).unwrap();
        assert!(engine.run_task(&t, &mut sink, &mut stats).is_break());
        let frontier = engine.take_frontier();
        assert!(!frontier.is_empty());
        for task in &frontier {
            if let ResumeTask::Node { l, v, p, q, .. } = task {
                assert!(*v < g.num_v());
                for &w in p.iter().chain(q.iter()) {
                    assert!(w < g.num_v());
                }
                for &u in l {
                    assert!(u < g.num_u());
                }
                assert!(setops::is_strictly_increasing(l));
            }
        }
    }

    #[test]
    fn peak_trie_nodes_is_tracked() {
        // Needs a node with more candidates than the small-node fast-path
        // threshold, or no trie is ever built: one root vertex whose
        // 2-hop universe has 8 partially-overlapping candidates.
        let mut edges = vec![(0u32, 0u32), (1, 0), (2, 0), (3, 0)];
        for v in 1..=8u32 {
            edges.push((v % 4, v));
            edges.push(((v + 1) % 4, v));
        }
        let g = BipartiteGraph::from_edges(4, 9, &edges).unwrap();
        let mut engine = MbetEngine::new(&g, MbetConfig::default(), Kernel::Adaptive);
        let mut sink = CollectSink::new();
        let mut stats = Stats::default();
        let mut builder = TaskBuilder::new(&g);
        for v in 0..g.num_v() {
            if let Some(t) = builder.build(v) {
                assert!(engine.run_task(&t, &mut sink, &mut stats).is_continue());
            }
        }
        assert!(engine.peak_trie_nodes() > 1);
        crate::verify::assert_matches_brute_force(&g, &sink.into_vec());
    }

    #[test]
    fn fast_path_threshold_boundary() {
        // Graphs straddling the SMALL_NODE_CANDIDATES boundary must agree
        // with brute force regardless of which path handles the root.
        for extra in 0..=(2 * SMALL_NODE_CANDIDATES as u32) {
            let mut edges = vec![(0u32, 0u32), (1, 0)];
            for v in 1..=(1 + extra) {
                edges.push((v % 3, v));
                edges.push(((v + 1) % 3, v));
            }
            let g = BipartiteGraph::from_edges(3, 2 + extra, &edges).unwrap();
            for kernel in [Kernel::Adaptive, Kernel::SortedOnly, Kernel::BitmapOnly] {
                let (bicliques, _) = run_mbet_kernel(&g, MbetConfig::default(), kernel);
                crate::verify::assert_matches_brute_force(&g, &bicliques);
            }
        }
    }
}
