//! Extremal biclique search: the maximum-edge biclique and the top-k.
//!
//! The maximum-edge biclique is always maximal (adding a vertex adds
//! edges), so the search space is the same enumeration tree — but a
//! branch-and-bound cut applies: a node `(L', R', C')` can never produce
//! more than `|L'| · (|R'| + |C'|)` edges, because descendants only
//! shrink `L` and only grow `R` from `C`. Branches whose bound cannot
//! beat the incumbent(s) are cut, which prunes the vast majority of the
//! tree on skewed graphs.
//!
//! Top-k keeps a min-heap of the k best scores and bounds against the
//! heap minimum once full.
//!
//! [`top_k_with_control`] runs the same search under a [`RunControl`]:
//! cancellation and the deadline are observed at root-task boundaries,
//! and a stopped search still returns its best-so-far incumbents (they
//! are genuine maximal bicliques, just not necessarily the global top-k).

use crate::metrics::{RunMetrics, Stats};
use crate::run::{ControlState, Report, RunControl, StopReason};
use crate::sink::Biclique;
use crate::task::TaskBuilder;
use bigraph::BipartiteGraph;
use std::collections::BinaryHeap;

/// The maximum-edge maximal biclique, or `None` for edgeless graphs.
// xtask-allow: tuple-return
pub fn maximum_edge_biclique(g: &BipartiteGraph) -> (Option<Biclique>, Stats) {
    let (mut found, stats) = top_k_by_edges(g, 1);
    (found.pop(), stats)
}

/// The `k` maximal bicliques with the most edges (`|L|·|R|`), best
/// first. Ties are broken arbitrarily but deterministically.
// xtask-allow: tuple-return
pub fn top_k_by_edges(g: &BipartiteGraph, k: usize) -> (Vec<Biclique>, Stats) {
    let report = top_k_with_control(g, k, &RunControl::new());
    (report.bicliques, report.stats)
}

/// [`top_k_by_edges`] under a [`RunControl`]: the search checks for
/// cancellation and the deadline between root tasks and reports how it
/// ended via [`Report::stop`]. Emission and node budgets do not apply to
/// extremal search (incumbents are replaced, not streamed) and are
/// ignored. A stopped run's bicliques are maximal and duplicate-free but
/// may rank below the true top-k.
pub fn top_k_with_control(g: &BipartiteGraph, k: usize, control: &RunControl) -> Report {
    let start = std::time::Instant::now();
    let mut stats = Stats::default();
    let state = ControlState::new(control);
    let mut stop = StopReason::Completed;
    let mut search = Search { g, k, heap: BinaryHeap::new() };
    if k > 0 {
        state.check_idle();
        if let Some(r) = state.stopped() {
            stop = r;
        } else {
            let mut builder = TaskBuilder::new(g);
            for v in 0..g.num_v() {
                if let Some(task) = builder.build(v) {
                    stats.tasks += 1;
                    search.expand(&task.l0, &[], task.v, &task.p0, &task.q0, &mut stats);
                }
                state.check_idle();
                if let Some(r) = state.stopped() {
                    stop = r;
                    break;
                }
            }
        }
    }
    let mut out: Vec<Biclique> = search.heap.into_iter().map(|e| e.biclique).collect();
    out.sort_by_key(|b| std::cmp::Reverse(b.edges()));
    stats.elapsed = start.elapsed();
    Report { bicliques: out, stats, stop, checkpoint: None, metrics: RunMetrics::default() }
}

/// Heap entry ordered so `BinaryHeap` behaves as a *min*-heap on score:
/// `peek` is the weakest incumbent, i.e. the pruning threshold.
struct Entry {
    score: usize,
    biclique: Biclique,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.score.cmp(&self.score)
    }
}

struct Search<'g> {
    g: &'g BipartiteGraph,
    k: usize,
    heap: BinaryHeap<Entry>,
}

impl Search<'_> {
    /// Current pruning threshold: the k-th best score so far.
    fn threshold(&self) -> usize {
        if self.heap.len() < self.k {
            0
        } else {
            self.heap.peek().map_or(0, |e| e.score)
        }
    }

    fn offer(&mut self, left: &[u32], right: &[u32]) {
        let score = left.len() * right.len();
        if self.heap.len() == self.k {
            if score <= self.threshold() {
                return;
            }
            self.heap.pop();
        }
        self.heap.push(Entry {
            score,
            biclique: Biclique { left: left.to_vec(), right: right.to_vec() },
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn expand(
        &mut self,
        l_new: &[u32],
        r_parent: &[u32],
        v: u32,
        untraversed: &[u32],
        traversed: &[u32],
        stats: &mut Stats,
    ) {
        // Bound: descendants keep L ⊆ L' and R ⊆ R' ∪ {v} ∪ C'.
        let ub = l_new.len() * (r_parent.len() + 1 + untraversed.len());
        if ub <= self.threshold() {
            stats.bound_pruned += 1;
            return;
        }
        stats.nodes += 1;
        if crate::task::covered_by_excluded(self.g, traversed, l_new) {
            stats.nonmaximal += 1;
            return;
        }
        let mut absorbed: Vec<u32> = Vec::new();
        let mut p_new: Vec<u32> = Vec::new();
        crate::task::partition_candidates(self.g, untraversed, l_new, &mut absorbed, &mut p_new);
        let r_new = crate::task::assemble_r(r_parent, v, &absorbed);

        self.offer(l_new, &r_new);
        stats.emitted += 1;

        let mut q_now: Vec<u32> = Vec::new();
        crate::task::live_excluded(self.g, traversed, l_new, &mut q_now);
        let mut l_child = Vec::new();
        for i in 0..p_new.len() {
            let w = p_new[i];
            crate::task::child_l(self.g, l_new, w, &mut l_child);
            let l_child_owned = std::mem::take(&mut l_child);
            self.expand(&l_child_owned, &r_new, w, &p_new[i + 1..], &q_now, stats);
            l_child = l_child_owned;
            q_now.push(w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Enumeration;
    use proptest::prelude::*;

    fn g0() -> BipartiteGraph {
        BipartiteGraph::from_edges(
            5,
            4,
            &[
                (0, 0),
                (0, 1),
                (0, 2),
                (1, 0),
                (1, 1),
                (1, 2),
                (1, 3),
                (2, 1),
                (3, 1),
                (3, 2),
                (3, 3),
                (4, 3),
            ],
        )
        .unwrap()
    }

    #[test]
    fn maximum_on_g0() {
        // Three maximal bicliques of G0 have 6 edges (the maximum).
        let (best, stats) = maximum_edge_biclique(&g0());
        let best = best.expect("non-empty graph");
        assert_eq!(best.edges(), 6);
        assert!(stats.nodes > 0);
    }

    #[test]
    fn top_k_ordering_and_truncation() {
        let (top, _) = top_k_by_edges(&g0(), 3);
        assert_eq!(top.len(), 3);
        assert!(top.windows(2).all(|w| w[0].edges() >= w[1].edges()));
        assert_eq!(top[0].edges(), 6);
        // Requesting more than exist returns all six.
        let (all, _) = top_k_by_edges(&g0(), 100);
        assert_eq!(all.len(), 6);
        // k = 0 is empty, no search performed.
        let (none, stats) = top_k_by_edges(&g0(), 0);
        assert!(none.is_empty());
        assert_eq!(stats.nodes, 0);
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::from_edges(3, 3, &[]).unwrap();
        let (best, _) = maximum_edge_biclique(&g);
        assert!(best.is_none());
    }

    #[test]
    fn controlled_search_completes_and_matches() {
        let report = top_k_with_control(&g0(), 3, &RunControl::new());
        assert!(report.is_complete());
        let (plain, _) = top_k_by_edges(&g0(), 3);
        assert_eq!(report.bicliques, plain);
    }

    #[test]
    fn pre_cancelled_search_stops_immediately() {
        let control = RunControl::new();
        control.cancel();
        let report = top_k_with_control(&g0(), 3, &control);
        assert_eq!(report.stop, StopReason::Cancelled);
        assert!(report.bicliques.is_empty());
        assert_eq!(report.stats.tasks, 0);
    }

    #[test]
    fn expired_deadline_reports_deadline() {
        let control = RunControl::new().timeout(std::time::Duration::ZERO);
        let report = top_k_with_control(&g0(), 3, &control);
        assert_eq!(report.stop, StopReason::Deadline);
        assert!(report.bicliques.is_empty());
    }

    #[test]
    fn bound_pruning_fires_on_skewed_input() {
        // A big planted block dwarfs everything; most branches should be
        // cut against it.
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for u in 0..8 {
            for v in 0..8 {
                edges.push((u, v));
            }
        }
        for i in 0..20u32 {
            edges.push((8 + i % 4, 8 + i));
        }
        let g = BipartiteGraph::from_edges(12, 28, &edges).unwrap();
        let (best, stats) = maximum_edge_biclique(&g);
        assert_eq!(best.expect("block exists").edges(), 64);
        assert!(stats.bound_pruned > 0, "bound pruning never fired");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Top-k agrees with sorting the full enumeration.
        #[test]
        fn matches_full_enumeration(
            edges in proptest::collection::vec((0u32..9, 0u32..8), 0..50),
            k in 1usize..6,
        ) {
            let g = BipartiteGraph::from_edges(9, 8, &edges).unwrap();
            let (top, _) = top_k_by_edges(&g, k);
            let all = Enumeration::new(&g).collect().unwrap().bicliques;
            let mut scores: Vec<usize> = all.iter().map(|b| b.edges()).collect();
            scores.sort_unstable_by(|a, b| b.cmp(a));
            let want: Vec<usize> = scores.into_iter().take(k).collect();
            let got: Vec<usize> = top.iter().map(|b| b.edges()).collect();
            prop_assert_eq!(got, want);
            // Every returned biclique is genuinely maximal.
            for b in &top {
                prop_assert!(crate::verify::is_maximal_biclique(&g, &b.left, &b.right));
            }
        }
    }
}
