//! Progress-sampling sink adapter.
//!
//! Long enumerations (the TVTropes-class datasets run for hours in the
//! published evaluations) need observable progress: emissions per second,
//! time-to-decile, and a live count. [`ProgressSink`] wraps any inner
//! sink and records a time-stamped sample every `sample_every` emissions,
//! allocation-free per emission. The E9 experiment and the long-running
//! examples are built on it.
//!
//! The sample buffer is *bounded*: once it reaches [`MAX_SAMPLES`], every
//! other retained sample is dropped and the interval doubles, so an
//! unbounded enumeration keeps O([`MAX_SAMPLES`]) memory while the
//! retained samples stay evenly spaced over the whole run.

use crate::run::StopReason;
use crate::sink::BicliqueSink;
use std::ops::ControlFlow;
use std::time::{Duration, Instant};

/// One progress sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// Emissions seen when the sample was taken.
    pub emitted: u64,
    /// Wall-clock time since the sink was created.
    pub elapsed: Duration,
}

/// Hard cap on retained samples: reaching it triggers decimation (drop
/// every other sample, double the interval), bounding memory at
/// ~`MAX_SAMPLES × size_of::<Sample>()` regardless of run length.
pub const MAX_SAMPLES: usize = 4096;

/// Wraps an inner sink, sampling `(emitted, elapsed)` periodically.
pub struct ProgressSink<S: BicliqueSink> {
    inner: S,
    sample_every: u64,
    emitted: u64,
    start: Instant,
    samples: Vec<Sample>,
}

impl<S: BicliqueSink> ProgressSink<S> {
    /// Samples after every `sample_every` emissions (≥ 1).
    pub fn new(inner: S, sample_every: u64) -> Self {
        ProgressSink {
            inner,
            sample_every: sample_every.max(1),
            emitted: 0,
            start: Instant::now(),
            samples: Vec::new(),
        }
    }

    /// Emissions seen so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// The recorded samples, in order. Never longer than
    /// [`MAX_SAMPLES`]; see [`sample_every`](Self::sample_every) for the
    /// (possibly decimation-doubled) current interval.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// The current sampling interval. Starts at the constructor value and
    /// doubles on each decimation pass.
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// Mean emission rate so far, per second.
    pub fn rate_per_sec(&self) -> f64 {
        rate_per_sec(self.emitted, self.start.elapsed())
    }

    /// Time at which the `i`-th fraction (`i / parts`) of `total`
    /// emissions was first reached, if sampled densely enough.
    pub fn time_to_fraction(&self, total: u64, i: u64, parts: u64) -> Option<Duration> {
        let target = total.saturating_mul(i) / parts.max(1);
        self.samples.iter().find(|s| s.emitted >= target).map(|s| s.elapsed)
    }

    /// Returns the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

/// Elapsed times below this (one microsecond) are treated as "no time has
/// passed yet": rates computed over them would be dominated by timer
/// granularity, not by the run.
pub const MIN_ELAPSED_SECS: f64 = 1e-6;

/// Mean emission rate over `elapsed`, per second (`0.0` before any
/// measurable time — at least [`MIN_ELAPSED_SECS`] — has passed, so a
/// first sample taken immediately after start never reports an absurd
/// rate). Shared by [`ProgressSink`] and the CLI `--progress` line.
pub fn rate_per_sec(emitted: u64, elapsed: Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs < MIN_ELAPSED_SECS {
        0.0
    } else {
        emitted as f64 / secs
    }
}

/// Estimated time remaining to reach `total` emissions at the mean rate
/// observed so far. `None` when the rate is zero (nothing emitted, or no
/// measurable time elapsed yet), when the total has been reached, or when
/// the estimate is not representable as a [`Duration`] — never an
/// infinite/NaN estimate and never a panic, however extreme the inputs.
pub fn eta(emitted: u64, total: u64, elapsed: Duration) -> Option<Duration> {
    let rate = rate_per_sec(emitted, elapsed);
    if rate <= 0.0 || emitted >= total {
        return None;
    }
    let secs = (total - emitted) as f64 / rate;
    if !secs.is_finite() {
        return None;
    }
    Duration::try_from_secs_f64(secs).ok()
}

impl<S: BicliqueSink> BicliqueSink for ProgressSink<S> {
    fn emit(&mut self, left: &[u32], right: &[u32]) -> ControlFlow<StopReason> {
        self.emitted += 1;
        if self.emitted.is_multiple_of(self.sample_every) {
            if self.samples.len() >= MAX_SAMPLES {
                // Decimate: keep every other sample (the ones aligned to
                // the doubled interval) and sample half as often from now
                // on. Amortized O(1) per emission.
                let mut i = 0usize;
                self.samples.retain(|_| {
                    i += 1;
                    i.is_multiple_of(2)
                });
                self.sample_every = self.sample_every.saturating_mul(2);
            }
            if self.emitted.is_multiple_of(self.sample_every) {
                self.samples.push(Sample { emitted: self.emitted, elapsed: self.start.elapsed() });
            }
        }
        self.inner.emit(left, right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CountSink;

    #[test]
    fn samples_at_interval() {
        let mut p = ProgressSink::new(CountSink::default(), 3);
        for _ in 0..10 {
            assert!(p.emit(&[0], &[0]).is_continue());
        }
        assert_eq!(p.emitted(), 10);
        let marks: Vec<u64> = p.samples().iter().map(|s| s.emitted).collect();
        assert_eq!(marks, [3, 6, 9]);
        assert_eq!(p.into_inner().count(), 10);
    }

    #[test]
    fn zero_interval_clamped() {
        let mut p = ProgressSink::new(CountSink::default(), 0);
        assert!(p.emit(&[0], &[0]).is_continue());
        assert_eq!(p.samples().len(), 1, "interval clamps to 1");
    }

    #[test]
    fn decimation_bounds_samples() {
        let mut p = ProgressSink::new(CountSink::default(), 1);
        let total = (MAX_SAMPLES as u64) * 3;
        for _ in 0..total {
            assert!(p.emit(&[0], &[0]).is_continue());
        }
        assert!(p.samples().len() <= MAX_SAMPLES, "len={}", p.samples().len());
        assert!(p.sample_every() > 1, "interval must have doubled");
        // Retained samples stay aligned to the current interval and
        // strictly ordered.
        let every = p.sample_every();
        for w in p.samples().windows(2) {
            assert!(w[0].emitted < w[1].emitted);
        }
        assert!(p.samples().iter().all(|s| s.emitted.is_multiple_of(every)));
        assert_eq!(p.emitted(), total);
    }

    #[test]
    fn time_to_fraction_lookup() {
        let mut p = ProgressSink::new(CountSink::default(), 1);
        for _ in 0..8 {
            assert!(p.emit(&[0], &[0]).is_continue());
        }
        // Half of 8 = 4: reached at the 4th sample.
        let t_half = p.time_to_fraction(8, 1, 2).expect("sampled");
        let t_full = p.time_to_fraction(8, 2, 2).expect("sampled");
        assert!(t_half <= t_full);
        assert!(p.time_to_fraction(8, 3, 2).is_none() || p.emitted() >= 12);
    }

    #[test]
    fn rate_and_eta_math() {
        let dt = Duration::from_secs(2);
        assert!((rate_per_sec(100, dt) - 50.0).abs() < 1e-9);
        assert_eq!(rate_per_sec(100, Duration::ZERO), 0.0);
        // 100 done of 200 in 2 s at 50/s → 2 s to go.
        let e = eta(100, 200, dt).expect("rate is positive");
        assert!((e.as_secs_f64() - 2.0).abs() < 1e-9);
        assert_eq!(eta(200, 200, dt), None, "already reached");
        assert_eq!(eta(0, 10, Duration::ZERO), None, "no rate yet");
    }

    #[test]
    fn rate_guards_near_zero_elapsed() {
        // Below the 1 µs floor the rate is reported as zero, not as an
        // astronomically inflated emissions/s figure.
        assert_eq!(rate_per_sec(1_000_000, Duration::from_nanos(1)), 0.0);
        assert_eq!(rate_per_sec(1_000_000, Duration::from_nanos(999)), 0.0);
        // Exactly at the floor the rate becomes finite and meaningful.
        let at_floor = rate_per_sec(10, Duration::from_micros(1));
        assert!((at_floor - 1e7).abs() < 1.0, "rate at floor = {at_floor}");
        assert_eq!(rate_per_sec(0, Duration::from_secs(5)), 0.0, "nothing emitted");
    }

    #[test]
    fn eta_boundaries_never_panic_or_go_infinite() {
        // Near-zero elapsed → zero rate → no estimate.
        assert_eq!(eta(5, 10, Duration::from_nanos(1)), None);
        // Zero emissions in real time → zero rate → no estimate.
        assert_eq!(eta(0, 10, Duration::from_secs(3)), None);
        // A remaining count so large the estimate exceeds what a Duration
        // can hold: previously a `Duration::from_secs_f64` panic, now None.
        assert_eq!(eta(1, u64::MAX, Duration::from_secs(3600)), None);
        // Same guard one step in from the extreme: ~1.8e13 s still fits.
        assert!(eta(1, 1 << 44, Duration::from_secs(1)).is_some());
        // emitted > total (caller raced the counter) is "reached".
        assert_eq!(eta(11, 10, Duration::from_secs(1)), None);
        // ETA of the last item at a slow rate stays finite and sane.
        let e = eta(1, 2, Duration::from_secs(1000)).expect("finite estimate");
        assert!((e.as_secs_f64() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn stop_propagates_through() {
        let mut hits = 0;
        {
            let inner = crate::FnSink(|_: &[u32], _: &[u32]| {
                hits += 1;
                crate::sink::STOP
            });
            let mut p = ProgressSink::new(inner, 1);
            assert!(p.emit(&[0], &[0]).is_break());
        }
        assert_eq!(hits, 1);
    }

    #[test]
    fn end_to_end_on_enumeration() {
        let g = bigraph::BipartiteGraph::from_edges(
            5,
            4,
            &[
                (0, 0),
                (0, 1),
                (0, 2),
                (1, 0),
                (1, 1),
                (1, 2),
                (1, 3),
                (2, 1),
                (3, 1),
                (3, 2),
                (3, 3),
                (4, 3),
            ],
        )
        .unwrap();
        let mut p = ProgressSink::new(CountSink::default(), 2);
        let report = crate::Enumeration::new(&g).run(&mut p).unwrap();
        assert!(report.is_complete());
        assert_eq!(p.emitted(), report.stats.emitted);
        assert_eq!(p.samples().len() as u64, report.stats.emitted / 2);
        assert!(p.rate_per_sec() > 0.0);
    }
}
