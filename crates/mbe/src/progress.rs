//! Progress-sampling sink adapter.
//!
//! Long enumerations (the TVTropes-class datasets run for hours in the
//! published evaluations) need observable progress: emissions per second,
//! time-to-decile, and a live count. [`ProgressSink`] wraps any inner
//! sink and records a time-stamped sample every `sample_every` emissions,
//! allocation-free per emission. The E9 experiment and the long-running
//! examples are built on it.

use crate::run::StopReason;
use crate::sink::BicliqueSink;
use std::ops::ControlFlow;
use std::time::{Duration, Instant};

/// One progress sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// Emissions seen when the sample was taken.
    pub emitted: u64,
    /// Wall-clock time since the sink was created.
    pub elapsed: Duration,
}

/// Wraps an inner sink, sampling `(emitted, elapsed)` periodically.
pub struct ProgressSink<S: BicliqueSink> {
    inner: S,
    sample_every: u64,
    emitted: u64,
    start: Instant,
    samples: Vec<Sample>,
}

impl<S: BicliqueSink> ProgressSink<S> {
    /// Samples after every `sample_every` emissions (≥ 1).
    pub fn new(inner: S, sample_every: u64) -> Self {
        ProgressSink {
            inner,
            sample_every: sample_every.max(1),
            emitted: 0,
            start: Instant::now(),
            samples: Vec::new(),
        }
    }

    /// Emissions seen so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// The recorded samples, in order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Mean emission rate so far, per second.
    pub fn rate_per_sec(&self) -> f64 {
        let secs = self.start.elapsed().as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.emitted as f64 / secs
        }
    }

    /// Time at which the `i`-th fraction (`i / parts`) of `total`
    /// emissions was first reached, if sampled densely enough.
    pub fn time_to_fraction(&self, total: u64, i: u64, parts: u64) -> Option<Duration> {
        let target = total.saturating_mul(i) / parts.max(1);
        self.samples.iter().find(|s| s.emitted >= target).map(|s| s.elapsed)
    }

    /// Returns the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: BicliqueSink> BicliqueSink for ProgressSink<S> {
    fn emit(&mut self, left: &[u32], right: &[u32]) -> ControlFlow<StopReason> {
        self.emitted += 1;
        if self.emitted.is_multiple_of(self.sample_every) {
            self.samples.push(Sample { emitted: self.emitted, elapsed: self.start.elapsed() });
        }
        self.inner.emit(left, right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CountSink;

    #[test]
    fn samples_at_interval() {
        let mut p = ProgressSink::new(CountSink::default(), 3);
        for _ in 0..10 {
            assert!(p.emit(&[0], &[0]).is_continue());
        }
        assert_eq!(p.emitted(), 10);
        let marks: Vec<u64> = p.samples().iter().map(|s| s.emitted).collect();
        assert_eq!(marks, [3, 6, 9]);
        assert_eq!(p.into_inner().count(), 10);
    }

    #[test]
    fn zero_interval_clamped() {
        let mut p = ProgressSink::new(CountSink::default(), 0);
        assert!(p.emit(&[0], &[0]).is_continue());
        assert_eq!(p.samples().len(), 1, "interval clamps to 1");
    }

    #[test]
    fn time_to_fraction_lookup() {
        let mut p = ProgressSink::new(CountSink::default(), 1);
        for _ in 0..8 {
            assert!(p.emit(&[0], &[0]).is_continue());
        }
        // Half of 8 = 4: reached at the 4th sample.
        let t_half = p.time_to_fraction(8, 1, 2).expect("sampled");
        let t_full = p.time_to_fraction(8, 2, 2).expect("sampled");
        assert!(t_half <= t_full);
        assert!(p.time_to_fraction(8, 3, 2).is_none() || p.emitted() >= 12);
    }

    #[test]
    fn stop_propagates_through() {
        let mut hits = 0;
        {
            let inner = crate::FnSink(|_: &[u32], _: &[u32]| {
                hits += 1;
                crate::sink::STOP
            });
            let mut p = ProgressSink::new(inner, 1);
            assert!(p.emit(&[0], &[0]).is_break());
        }
        assert_eq!(hits, 1);
    }

    #[test]
    fn end_to_end_on_enumeration() {
        let g = bigraph::BipartiteGraph::from_edges(
            5,
            4,
            &[
                (0, 0),
                (0, 1),
                (0, 2),
                (1, 0),
                (1, 1),
                (1, 2),
                (1, 3),
                (2, 1),
                (3, 1),
                (3, 2),
                (3, 3),
                (4, 3),
            ],
        )
        .unwrap();
        let mut p = ProgressSink::new(CountSink::default(), 2);
        let report = crate::Enumeration::new(&g).run(&mut p).unwrap();
        assert!(report.is_complete());
        assert_eq!(p.emitted(), report.stats.emitted);
        assert_eq!(p.samples().len() as u64, report.stats.emitted / 2);
        assert!(p.rate_per_sec() > 0.0);
    }
}
