//! Size-constrained enumeration: maximal bicliques with `|L| ≥ min_l`
//! and `|R| ≥ min_r`.
//!
//! The thresholds enable two sound prunings on top of the standard
//! recursion:
//!
//! 1. **Core reduction** — every qualifying maximal biclique lives in the
//!    `(min_r, min_l)`-core of the graph (each `u ∈ L` has ≥ `|R| ≥
//!    min_r` neighbors, each `v ∈ R` has ≥ `|L| ≥ min_l`), and a biclique
//!    that is maximal in the core is maximal in the full graph whenever
//!    it meets the thresholds: an extension vertex would be adjacent to
//!    the entire surviving other side and therefore could never have
//!    been peeled. Enumerating the (usually much smaller) core is
//!    equivalent.
//! 2. **Branch pruning** — `L` only shrinks down a branch, so `|L'| <
//!    min_l` kills the subtree; `R` can grow only by the surviving
//!    candidates, so `|R'| + |C'| < min_r` kills it too.
//!
//! This is the "large maximal biclique" mode of the MineLMBC line of
//! work, exposed as a first-class API because the motivating
//! applications (fraud rings, co-expression modules) always carry size
//! thresholds.

use std::ops::ControlFlow;

use crate::metrics::Stats;
use crate::run::{ControlState, ControlledSink, RunControl, StopReason};
use crate::sink::BicliqueSink;
use crate::task::TaskBuilder;
use bigraph::core::alpha_beta_core;
use bigraph::BipartiteGraph;

/// Thresholds for size-constrained enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeThresholds {
    /// Minimum `|L|` of reported bicliques (≥ 1).
    pub min_l: usize,
    /// Minimum `|R|` of reported bicliques (≥ 1).
    pub min_r: usize,
}

impl SizeThresholds {
    /// Thresholds `(min_l, min_r)`; zero values are raised to 1.
    pub fn new(min_l: usize, min_r: usize) -> Self {
        SizeThresholds { min_l: min_l.max(1), min_r: min_r.max(1) }
    }
}

/// Size-filtered enumeration core used by the [`crate::Enumeration`]
/// builder (via [`crate::Enumeration::thresholds`]): core-reduces `g`, runs every root task under `control`, and
/// returns the stats plus the stop reason. Vertex ids are reported in
/// `g`'s id space; counters refer to the *reduced* graph's enumeration.
pub(crate) fn run_filtered<S: BicliqueSink>(
    g: &BipartiteGraph,
    thr: SizeThresholds,
    control: &RunControl,
    sink: &mut S,
) -> (Stats, StopReason) {
    let start = std::time::Instant::now();
    let mut stats = Stats::default();
    let red = alpha_beta_core(g, thr.min_r, thr.min_l);
    let h = &red.graph;

    let state = ControlState::new(control);

    // Remap emissions back to the caller's ids on the fly.
    let mut lbuf = Vec::new();
    let mut rbuf = Vec::new();
    let mut mapped = crate::sink::FnSink(|l: &[u32], r: &[u32]| {
        lbuf.clear();
        lbuf.extend(l.iter().map(|&u| red.u_map[u as usize]));
        lbuf.sort_unstable();
        rbuf.clear();
        rbuf.extend(r.iter().map(|&v| red.v_map[v as usize]));
        rbuf.sort_unstable();
        sink.emit(&lbuf, &rbuf)
    });
    let mut controlled = ControlledSink::new(&state, &mut mapped);

    let mut stop = StopReason::Completed;
    if let ControlFlow::Break(r) = state.note_task(0) {
        stop = r; // cancelled or expired before any work
    } else {
        let mut engine = FilteredEngine { g: h, thr };
        let mut builder = TaskBuilder::new(h);
        for v in 0..h.num_v() {
            if let Some(task) = builder.build(v) {
                stats.tasks += 1;
                let nodes_before = stats.nodes;
                let flow = engine.expand(
                    &task.l0,
                    &[],
                    task.v,
                    &task.p0,
                    &task.q0,
                    &mut controlled,
                    &mut stats,
                );
                if let ControlFlow::Break(r) = flow {
                    stop = state.note_stop(r);
                    break;
                }
                if let ControlFlow::Break(r) = state.note_task(stats.nodes - nodes_before) {
                    stop = r;
                    break;
                }
            }
        }
    }
    stats.elapsed = start.elapsed();
    (stats, stop)
}

/// MBEA-style engine with the two size prunings.
struct FilteredEngine<'g> {
    g: &'g BipartiteGraph,
    thr: SizeThresholds,
}

impl FilteredEngine<'_> {
    #[allow(clippy::too_many_arguments)]
    fn expand(
        &mut self,
        l_new: &[u32],
        r_parent: &[u32],
        v: u32,
        untraversed: &[u32],
        traversed: &[u32],
        sink: &mut dyn BicliqueSink,
        stats: &mut Stats,
    ) -> ControlFlow<StopReason> {
        // Size pruning 1: L only shrinks below here.
        if l_new.len() < self.thr.min_l {
            stats.bound_pruned += 1;
            return ControlFlow::Continue(());
        }
        stats.nodes += 1;
        if crate::task::covered_by_excluded(self.g, traversed, l_new) {
            stats.nonmaximal += 1;
            return ControlFlow::Continue(());
        }
        let mut absorbed: Vec<u32> = Vec::new();
        let mut p_new: Vec<u32> = Vec::new();
        crate::task::partition_candidates(self.g, untraversed, l_new, &mut absorbed, &mut p_new);
        stats.absorbed += absorbed.len() as u64;
        let r_len = r_parent.len() + 1 + absorbed.len();

        // Size pruning 2: R can gain at most the surviving candidates.
        if r_len + p_new.len() < self.thr.min_r {
            stats.bound_pruned += 1;
            return ControlFlow::Continue(());
        }

        let r_new = crate::task::assemble_r(r_parent, v, &absorbed);

        if r_new.len() >= self.thr.min_r {
            sink.emit(l_new, &r_new)?;
            stats.emitted += 1;
        }

        let mut q_now: Vec<u32> = Vec::new();
        crate::task::live_excluded(self.g, traversed, l_new, &mut q_now);
        let mut l_child = Vec::new();
        for i in 0..p_new.len() {
            let w = p_new[i];
            crate::task::child_l(self.g, l_new, w, &mut l_child);
            let l_child_owned = std::mem::take(&mut l_child);
            self.expand(&l_child_owned, &r_new, w, &p_new[i + 1..], &q_now, sink, stats)?;
            l_child = l_child_owned;
            q_now.push(w);
        }
        ControlFlow::Continue(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::Biclique;
    use crate::{Algorithm, Enumeration, MbeOptions};
    use proptest::prelude::*;

    fn collect_thr(g: &BipartiteGraph, thr: SizeThresholds) -> (Vec<Biclique>, Stats) {
        let report = Enumeration::new(g).thresholds(thr).collect().unwrap();
        (report.bicliques, report.stats)
    }

    fn g0() -> BipartiteGraph {
        BipartiteGraph::from_edges(
            5,
            4,
            &[
                (0, 0),
                (0, 1),
                (0, 2),
                (1, 0),
                (1, 1),
                (1, 2),
                (1, 3),
                (2, 1),
                (3, 1),
                (3, 2),
                (3, 3),
                (4, 3),
            ],
        )
        .unwrap()
    }

    fn filtered_reference(g: &BipartiteGraph, thr: SizeThresholds) -> Vec<Biclique> {
        let all = Enumeration::new(g).collect().unwrap().bicliques;
        all.into_iter()
            .filter(|b| b.left.len() >= thr.min_l && b.right.len() >= thr.min_r)
            .collect()
    }

    #[test]
    fn g0_thresholds() {
        let g = g0();
        // All six.
        let (got, _) = collect_thr(&g, SizeThresholds::new(1, 1));
        assert_eq!(got.len(), 6);
        // |L| ≥ 2 and |R| ≥ 2: ({u1,u2},{v1,v2,v3}), ({u1,u2,u4},{v2,v3}),
        // ({u2,u4},{v2,v3,v4}).
        let (mut got, _) = collect_thr(&g, SizeThresholds::new(2, 2));
        got.sort();
        assert_eq!(got.len(), 3);
        // Impossible thresholds.
        let (got, _) = collect_thr(&g, SizeThresholds::new(5, 5));
        assert!(got.is_empty());
    }

    #[test]
    fn pruning_counters_move() {
        let g = g0();
        let (_, stats) = collect_thr(&g, SizeThresholds::new(2, 2));
        // The core reduction plus pruning must do strictly less node work
        // than unfiltered enumeration.
        let _ = Enumeration::new(&g).options(MbeOptions::new(Algorithm::Mbea)).collect().unwrap();
        assert!(stats.nodes <= 7);
    }

    #[test]
    fn filtered_run_honors_emit_budget() {
        let g = g0();
        let report = Enumeration::new(&g)
            .thresholds(SizeThresholds::new(1, 1))
            .max_bicliques(2)
            .collect()
            .unwrap();
        assert_eq!(report.stop, crate::StopReason::EmitBudget);
        assert_eq!(report.bicliques.len(), 2);
    }

    #[test]
    fn zero_thresholds_are_clamped() {
        let thr = SizeThresholds::new(0, 0);
        assert_eq!(thr.min_l, 1);
        assert_eq!(thr.min_r, 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Filtered enumeration equals post-filtered full enumeration.
        #[test]
        fn matches_post_filtered_full_enumeration(
            edges in proptest::collection::vec((0u32..10, 0u32..8), 0..60),
            min_l in 1usize..4,
            min_r in 1usize..4,
        ) {
            let g = BipartiteGraph::from_edges(10, 8, &edges).unwrap();
            let thr = SizeThresholds::new(min_l, min_r);
            let (mut got, _) = collect_thr(&g, thr);
            got.sort();
            let mut want = filtered_reference(&g, thr);
            want.sort();
            prop_assert_eq!(got, want);
        }
    }
}
