//! The run-control plane: one unified entry point for every enumeration.
//!
//! [`Enumeration`] is a builder that owns the graph, the [`MbeOptions`],
//! optional size [`SizeThresholds`], and a [`RunControl`] — a shareable
//! cancellation flag plus wall-clock deadline and emission/node budgets.
//! Every terminal method returns `Result<`[`Report`]`, `[`MbeError`]`>`;
//! a [`Report`] carries the results, the [`Stats`], and a typed
//! [`StopReason`], so partial results from a stopped run are first-class
//! values instead of a silent `false`.
//!
//! ```
//! use bigraph::BipartiteGraph;
//! use mbe::{Enumeration, StopReason};
//!
//! let g = BipartiteGraph::from_edges(3, 3, &[(0, 0), (0, 1), (1, 0), (1, 1), (2, 2)]).unwrap();
//! let report = Enumeration::new(&g).collect().unwrap();
//! assert_eq!(report.stop, StopReason::Completed);
//! assert_eq!(report.bicliques.len(), 2);
//! ```

use std::fmt;
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bigraph::order::VertexOrder;
use bigraph::BipartiteGraph;

use crate::checkpoint::{graph_fingerprint, Checkpoint, CheckpointError, ResumeTask};
use crate::filtered::SizeThresholds;
use crate::metrics::{RunMetrics, Stats, WorkerMetrics};
use crate::obs::{ObsCtx, Observer, RunContext, DEFAULT_SAMPLE_EVERY};
use crate::sink::{Biclique, BicliqueSink, CollectSink, CountSink};
use crate::{Algorithm, MbeOptions, MbetConfig};

/// Why an enumeration run ended.
///
/// Everything except [`StopReason::Completed`] describes an early stop;
/// the [`Report`] still carries every biclique emitted up to that point,
/// and the partial set is guaranteed to be a duplicate-free subset of the
/// complete run's output (asserted under the `debug-invariants` feature).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StopReason {
    /// The enumeration ran to the end; the result set is complete.
    #[default]
    Completed,
    /// The shared [`RunControl`] cancellation flag was raised.
    Cancelled,
    /// The wall-clock deadline passed.
    Deadline,
    /// The `max_emitted` budget was exhausted.
    EmitBudget,
    /// The `max_nodes` budget was exhausted (search-tree nodes for
    /// [`RunControl::max_nodes`], trie nodes for
    /// [`crate::TrieSink::with_node_limit`]).
    NodeBudget,
    /// A user sink returned `ControlFlow::Break` from `emit`.
    SinkStopped,
    /// A parallel worker panicked mid-task; the panicking task's subtree
    /// is *not* in the checkpoint (it may have partially emitted), so a
    /// resume cannot guarantee completeness — the panic surfaces as
    /// [`MbeError::WorkerPanic`] carrying the partial [`Report`].
    WorkerPanicked,
}

impl StopReason {
    /// `true` iff the run finished without stopping early.
    pub fn is_complete(self) -> bool {
        self == StopReason::Completed
    }

    /// Short human-readable label (used by the CLI).
    pub fn label(self) -> &'static str {
        match self {
            StopReason::Completed => "completed",
            StopReason::Cancelled => "cancelled",
            StopReason::Deadline => "deadline",
            StopReason::EmitBudget => "emit-budget",
            StopReason::NodeBudget => "node-budget",
            StopReason::SinkStopped => "sink-stopped",
            StopReason::WorkerPanicked => "worker-panic",
        }
    }

    pub(crate) fn encode(self) -> u8 {
        match self {
            StopReason::Completed => 1,
            StopReason::Cancelled => 2,
            StopReason::Deadline => 3,
            StopReason::EmitBudget => 4,
            StopReason::NodeBudget => 5,
            StopReason::SinkStopped => 6,
            StopReason::WorkerPanicked => 7,
        }
    }

    pub(crate) fn decode(word: u8) -> Option<StopReason> {
        match word {
            1 => Some(StopReason::Completed),
            2 => Some(StopReason::Cancelled),
            3 => Some(StopReason::Deadline),
            4 => Some(StopReason::EmitBudget),
            5 => Some(StopReason::NodeBudget),
            6 => Some(StopReason::SinkStopped),
            7 => Some(StopReason::WorkerPanicked),
            _ => None,
        }
    }
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// External control over a running enumeration.
///
/// Cloning a `RunControl` shares the cancellation flag: hand a clone to
/// another thread (or a signal handler) and call [`RunControl::cancel`]
/// there to stop a run in flight. Deadlines and budgets are plain values
/// copied into each run.
///
/// Budget semantics:
/// - `max_emitted` is exact, including under the parallel driver: the run
///   stops with [`StopReason::EmitBudget`] after exactly that many
///   bicliques have been forwarded to the sink (fewer if the enumeration
///   finishes first, with [`StopReason::Completed`]).
/// - `max_nodes` is enforced at task boundaries, so a run may overshoot
///   the node budget by the size of the tasks in flight before stopping
///   with [`StopReason::NodeBudget`].
/// - The deadline and the cancellation flag are observed before every
///   emission and in the workers' idle loops, so dense regions that emit
///   frequently stop promptly; an emission-free subtree finishes its task
///   before the stop is observed.
#[derive(Debug, Clone, Default)]
pub struct RunControl {
    cancel: Arc<AtomicBool>,
    deadline: Option<Instant>,
    max_emitted: Option<u64>,
    max_nodes: Option<u64>,
}

impl RunControl {
    /// A control with no limits: never cancels on its own.
    pub fn new() -> Self {
        RunControl::default()
    }

    /// Sets an absolute wall-clock deadline.
    pub fn deadline(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    /// Sets the deadline to `dur` from now.
    pub fn timeout(self, dur: Duration) -> Self {
        self.deadline(Instant::now() + dur)
    }

    /// Stops the run after exactly `n` bicliques have been emitted.
    pub fn max_emitted(mut self, n: u64) -> Self {
        self.max_emitted = Some(n);
        self
    }

    /// Stops the run once roughly `n` search-tree nodes have been
    /// expanded (checked at task boundaries).
    pub fn max_nodes(mut self, n: u64) -> Self {
        self.max_nodes = Some(n);
        self
    }

    /// Raises the shared cancellation flag. Safe to call from any thread;
    /// every run sharing this control (or a clone of it) stops at its
    /// next check point with [`StopReason::Cancelled`].
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::SeqCst);
    }

    /// `true` iff [`RunControl::cancel`] has been called on this control
    /// or any clone of it.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::SeqCst)
    }
}

/// Shared per-run state derived from a [`RunControl`]: the first stop
/// reason (first writer wins), the emission-token counter backing the
/// exact `max_emitted` budget, and the global expanded-node counter
/// backing `max_nodes`. One instance per run, shared by reference across
/// workers.
pub(crate) struct ControlState<'c> {
    control: &'c RunControl,
    obs: ObsCtx<'c>,
    emit_tokens: AtomicU64,
    nodes: AtomicU64,
    stop: AtomicU8,
}

impl<'c> ControlState<'c> {
    pub(crate) fn new(control: &'c RunControl) -> Self {
        ControlState::with_obs(control, ObsCtx::noop())
    }

    /// Like [`new`](Self::new), additionally firing `on_stop` through
    /// `obs` when a stop reason wins the first-writer race.
    pub(crate) fn with_obs(control: &'c RunControl, obs: ObsCtx<'c>) -> Self {
        ControlState {
            control,
            obs,
            emit_tokens: AtomicU64::new(0),
            nodes: AtomicU64::new(0),
            stop: AtomicU8::new(0),
        }
    }

    /// The recorded stop reason, if any stop has been requested.
    pub(crate) fn stopped(&self) -> Option<StopReason> {
        StopReason::decode(self.stop.load(Ordering::SeqCst))
    }

    /// The final reason for a finished run: the recorded stop, or
    /// `Completed` when nothing stopped it.
    pub(crate) fn reason(&self) -> StopReason {
        self.stopped().unwrap_or(StopReason::Completed)
    }

    /// Records `reason` as the run's stop reason unless one is already
    /// recorded; returns the winning (first-recorded) reason either way.
    pub(crate) fn note_stop(&self, reason: StopReason) -> StopReason {
        match self.stop.compare_exchange(0, reason.encode(), Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => {
                // Only the winning writer reports: on_stop fires exactly
                // once per run, with the reason every worker will observe.
                self.obs.stop(reason);
                reason
            }
            Err(prev) => StopReason::decode(prev).unwrap_or(reason),
        }
    }

    /// Per-emission gate: checks the recorded stop, the cancellation
    /// flag, the deadline, and (atomically, so it is exact across
    /// parallel workers) the emission budget.
    pub(crate) fn admit(&self) -> ControlFlow<StopReason> {
        if let Some(r) = self.stopped() {
            return ControlFlow::Break(r);
        }
        if self.control.is_cancelled() {
            return ControlFlow::Break(self.note_stop(StopReason::Cancelled));
        }
        if let Some(at) = self.control.deadline {
            if Instant::now() >= at {
                return ControlFlow::Break(self.note_stop(StopReason::Deadline));
            }
        }
        if let Some(max) = self.control.max_emitted {
            if self.emit_tokens.fetch_add(1, Ordering::SeqCst) >= max {
                return ControlFlow::Break(self.note_stop(StopReason::EmitBudget));
            }
        }
        ControlFlow::Continue(())
    }

    /// Task-boundary gate: adds `nodes_delta` expanded nodes to the
    /// global counter, then checks every passive stop condition (node
    /// budget, cancellation, deadline).
    pub(crate) fn note_task(&self, nodes_delta: u64) -> ControlFlow<StopReason> {
        if let Some(max) = self.control.max_nodes {
            let total = self.nodes.fetch_add(nodes_delta, Ordering::SeqCst) + nodes_delta;
            if total >= max {
                return ControlFlow::Break(self.note_stop(StopReason::NodeBudget));
            }
        } else {
            self.nodes.fetch_add(nodes_delta, Ordering::SeqCst);
        }
        if let Some(r) = self.stopped() {
            return ControlFlow::Break(r);
        }
        if self.control.is_cancelled() {
            return ControlFlow::Break(self.note_stop(StopReason::Cancelled));
        }
        if let Some(at) = self.control.deadline {
            if Instant::now() >= at {
                return ControlFlow::Break(self.note_stop(StopReason::Deadline));
            }
        }
        ControlFlow::Continue(())
    }

    /// Cheap passive check for idle loops (parallel workers between
    /// steals): observes cancellation and the deadline without touching
    /// any budget counter.
    pub(crate) fn check_idle(&self) {
        if self.stopped().is_some() {
            return;
        }
        if self.control.is_cancelled() {
            self.note_stop(StopReason::Cancelled);
        } else if let Some(at) = self.control.deadline {
            if Instant::now() >= at {
                self.note_stop(StopReason::Deadline);
            }
        }
    }
}

/// Internal sink adapter that gates every emission on the shared
/// [`ControlState`] before forwarding to the user sink, and records the
/// user sink's own stop as [`StopReason::SinkStopped`] (or whatever
/// reason the sink returned) in the shared state so parallel workers see
/// it.
pub(crate) struct ControlledSink<'a, S: BicliqueSink> {
    state: &'a ControlState<'a>,
    inner: &'a mut S,
}

impl<'a, S: BicliqueSink> ControlledSink<'a, S> {
    pub(crate) fn new(state: &'a ControlState<'a>, inner: &'a mut S) -> Self {
        ControlledSink { state, inner }
    }
}

impl<S: BicliqueSink> BicliqueSink for ControlledSink<'_, S> {
    fn emit(&mut self, left: &[u32], right: &[u32]) -> ControlFlow<StopReason> {
        self.state.admit()?;
        match self.inner.emit(left, right) {
            ControlFlow::Continue(()) => ControlFlow::Continue(()),
            ControlFlow::Break(r) => ControlFlow::Break(self.state.note_stop(r)),
        }
    }
}

/// Errors from the [`Enumeration`] terminals.
///
/// Early stops are *not* errors — they come back as `Ok(Report)` with a
/// non-`Completed` [`StopReason`]. Errors are configuration or runtime
/// failures that prevented the run from producing a meaningful report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MbeError {
    /// The builder was configured inconsistently (message says how).
    InvalidConfig(&'static str),
    /// The parallel driver failed to spawn a worker thread.
    Spawn(String),
    /// A worker thread panicked and its state could not be recovered
    /// (join failure outside the per-task containment); results would be
    /// incomplete.
    WorkerPanicked,
    /// A worker panicked *inside a task*; the panic was contained and
    /// the run drained cleanly. `report` is a valid partial report (its
    /// `stop` is [`StopReason::WorkerPanicked`]) whose checkpoint covers
    /// every task *except* the one that panicked — `task` names it.
    WorkerPanic {
        /// Short description of the task that panicked (internal ids).
        task: String,
        /// The panic payload, when it was a string.
        payload: String,
        /// The partial report: everything emitted before the panic plus
        /// the checkpoint of the surviving frontier.
        report: Box<Report>,
    },
    /// A checkpoint could not be read, validated, or matched to the
    /// graph being resumed.
    Checkpoint(CheckpointError),
}

impl fmt::Display for MbeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MbeError::InvalidConfig(msg) => write!(f, "invalid enumeration config: {msg}"),
            MbeError::Spawn(e) => write!(f, "failed to spawn worker thread: {e}"),
            MbeError::WorkerPanicked => f.write_str("a worker thread panicked"),
            MbeError::WorkerPanic { task, payload, report } => write!(
                f,
                "worker panicked in {task}: {payload} \
                 (partial report: {} bicliques emitted before the panic)",
                report.stats.emitted
            ),
            MbeError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
        }
    }
}

impl std::error::Error for MbeError {}

impl From<CheckpointError> for MbeError {
    fn from(e: CheckpointError) -> Self {
        MbeError::Checkpoint(e)
    }
}

/// The outcome of an enumeration run: results, stats, and why it ended.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// Collected bicliques (empty for counting terminals).
    pub bicliques: Vec<Biclique>,
    /// Enumeration statistics. For a stopped run these describe the work
    /// done up to the stop; the `nodes = emitted + nonmaximal` identity
    /// only holds for completed runs.
    pub stats: Stats,
    /// Why the run ended.
    pub stop: StopReason,
    /// The resumable frontier of a stopped run: `Some` whenever `stop`
    /// is not [`StopReason::Completed`] (except for size-thresholded
    /// runs, which are not checkpointable). Feed it back through
    /// [`Enumeration::resume`] — or serialize it with
    /// [`Checkpoint::to_bytes`] / [`Checkpoint::save`] — to continue the
    /// run later: the resumed output and this run's output are disjoint
    /// and together equal the complete run's output.
    pub checkpoint: Option<Checkpoint>,
    /// Per-worker telemetry (histograms, steal/idle counters) for this
    /// run segment; see [`RunMetrics`]. Always populated by the serial
    /// and parallel drivers; empty (default) for size-thresholded and
    /// extremal-search runs, which are not yet instrumented.
    pub metrics: RunMetrics,
}

impl Report {
    /// `true` iff the run finished without stopping early.
    pub fn is_complete(&self) -> bool {
        self.stop.is_complete()
    }

    /// Number of bicliques forwarded to the sink (equals
    /// `bicliques.len()` for collecting terminals).
    pub fn count(&self) -> u64 {
        self.stats.emitted
    }
}

/// Builder for one enumeration run — the single entry point that
/// replaces the old `enumerate` / `collect_bicliques` / `count_bicliques`
/// / `par_*` function family.
///
/// Configure the run with the chained setters, then finish with one of
/// the terminals: [`collect`](Enumeration::collect) (bicliques in a
/// `Report`), [`count`](Enumeration::count) (count only),
/// [`run`](Enumeration::run) (stream into your own sink on the serial
/// driver), or [`run_per_worker`](Enumeration::run_per_worker) (one sink
/// per parallel worker).
///
/// Threading follows `MbeOptions::threads`: `1` (the default) runs the
/// serial driver, `0` uses one worker per core, `n > 1` uses `n`
/// workers. `collect` and `count` dispatch automatically.
///
/// ```
/// use bigraph::BipartiteGraph;
/// use mbe::{Enumeration, StopReason};
///
/// let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
/// // A budget of 0 bicliques stops immediately with EmitBudget.
/// let report = Enumeration::new(&g).max_bicliques(0).collect().unwrap();
/// assert_eq!(report.stop, StopReason::EmitBudget);
/// assert!(report.bicliques.is_empty());
/// ```
pub struct Enumeration<'g> {
    g: &'g BipartiteGraph,
    opts: MbeOptions,
    control: RunControl,
    thresholds: Option<SizeThresholds>,
    resume: Option<Checkpoint>,
    observer: Option<&'g dyn Observer>,
    sample_every: u64,
    #[cfg(feature = "fault-injection")]
    faults: Option<crate::faults::FaultPlan>,
}

impl<'g> Enumeration<'g> {
    /// A run over `g` with default options (MBET, serial) and no limits.
    pub fn new(g: &'g BipartiteGraph) -> Self {
        Enumeration {
            g,
            opts: MbeOptions::default(),
            control: RunControl::new(),
            thresholds: None,
            resume: None,
            observer: None,
            sample_every: DEFAULT_SAMPLE_EVERY,
            #[cfg(feature = "fault-injection")]
            faults: None,
        }
    }

    /// Replaces the whole option set.
    pub fn options(mut self, opts: MbeOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Selects the engine.
    pub fn algorithm(mut self, alg: Algorithm) -> Self {
        self.opts.algorithm = alg;
        self
    }

    /// Sets the vertex order applied before enumeration.
    pub fn order(mut self, order: VertexOrder) -> Self {
        self.opts.order = order;
        self
    }

    /// Sets the worker-thread count (`1` serial, `0` all cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.opts.threads = threads;
        self
    }

    /// Sets the MBET feature toggles.
    pub fn mbet(mut self, cfg: MbetConfig) -> Self {
        self.opts.mbet = cfg;
        self
    }

    /// Restricts output to bicliques with `|L| >= min_l` and
    /// `|R| >= min_r`, enabling the size-filtered engine with its
    /// core-reduction preprocessing. Serial only.
    pub fn thresholds(mut self, thr: SizeThresholds) -> Self {
        self.thresholds = Some(thr);
        self
    }

    /// Replaces the whole run control.
    pub fn control(mut self, control: RunControl) -> Self {
        self.control = control;
        self
    }

    /// Stops the run `dur` from now with [`StopReason::Deadline`].
    pub fn timeout(mut self, dur: Duration) -> Self {
        self.control = self.control.timeout(dur);
        self
    }

    /// Stops the run after exactly `n` emissions with
    /// [`StopReason::EmitBudget`].
    pub fn max_bicliques(mut self, n: u64) -> Self {
        self.control = self.control.max_emitted(n);
        self
    }

    /// Stops the run once roughly `n` search-tree nodes have been
    /// expanded, with [`StopReason::NodeBudget`].
    pub fn max_nodes(mut self, n: u64) -> Self {
        self.control = self.control.max_nodes(n);
        self
    }

    /// A clone of this run's [`RunControl`]: hand it to another thread
    /// and call [`RunControl::cancel`] to stop the run in flight.
    pub fn control_handle(&self) -> RunControl {
        self.control.clone()
    }

    /// Attaches an [`Observer`] whose hooks fire throughout the run (both
    /// drivers). Without one, the hook sites reduce to a null check — see
    /// the hot-path contract in [`crate::obs`].
    pub fn observer(mut self, obs: &'g dyn Observer) -> Self {
        self.observer = Some(obs);
        self
    }

    /// Sets the emission-sampling cadence for
    /// [`Observer::on_emit_sample`] (per worker, in delivered emissions;
    /// clamped to at least 1). Defaults to
    /// [`DEFAULT_SAMPLE_EVERY`].
    pub fn sample_every(mut self, every: u64) -> Self {
        self.sample_every = every.max(1);
        self
    }

    /// The observer context the drivers thread around.
    fn obs_ctx(&self) -> ObsCtx<'g> {
        ObsCtx::new(self.observer, self.sample_every)
    }

    /// Fires `on_run_start` with this run's configuration.
    fn note_run_start(&self, obs: &ObsCtx<'g>) {
        obs.run_start(&RunContext {
            algorithm: self.opts.algorithm,
            threads: self.opts.threads,
            resumed: self.resume.is_some(),
        });
    }

    /// Fires `on_checkpoint` (when the report carries one) and
    /// `on_run_end` — the common run epilogue, also used on the
    /// contained-panic error path so trace observers always flush.
    fn note_run_end(obs: &ObsCtx<'g>, report: &Report) {
        if let Some(ck) = &report.checkpoint {
            obs.checkpoint(ck.frontier.len() as u64, ck.emitted);
        }
        obs.run_end(report.stop, &report.stats);
    }

    /// Continues a previously stopped run from its checkpoint instead of
    /// starting from the root.
    ///
    /// The checkpoint pins the result-affecting options — algorithm,
    /// vertex order, and MBET toggles are copied from it, and mutating
    /// them afterwards is rejected at the terminal. Thread count and
    /// splitting thresholds remain free: they redistribute work without
    /// changing the emitted set. The terminal validates that the graph's
    /// fingerprint matches the checkpoint
    /// ([`MbeError::Checkpoint`] otherwise).
    ///
    /// Guarantee: the resumed run's emissions are disjoint from the
    /// stopped run's, and (when the resumed run itself completes) their
    /// union is exactly the complete run's output.
    pub fn resume(mut self, ckpt: Checkpoint) -> Self {
        self.opts.algorithm = ckpt.algorithm;
        self.opts.order = ckpt.order;
        self.opts.mbet = ckpt.mbet;
        self.resume = Some(ckpt);
        self
    }

    /// Injects deterministic faults (scripted sink errors / panics) into
    /// this run — test-only machinery behind the `fault-injection`
    /// feature; see [`crate::faults`].
    #[cfg(feature = "fault-injection")]
    pub fn faults(mut self, plan: crate::faults::FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    fn validate(&self) -> Result<(), MbeError> {
        if self.thresholds.is_some() && self.opts.threads != 1 {
            return Err(MbeError::InvalidConfig(
                "size-thresholded enumeration runs on the serial driver; use .threads(1)",
            ));
        }
        Ok(())
    }

    /// Resume-specific validation, run by every terminal that honors
    /// checkpoints: thresholded runs cannot resume, the pinned options
    /// must not have been mutated after [`Enumeration::resume`], and the
    /// graph must fingerprint-match the checkpoint.
    fn validate_resume(&self) -> Result<(), MbeError> {
        let Some(ckpt) = &self.resume else {
            return Ok(());
        };
        if self.thresholds.is_some() {
            return Err(MbeError::InvalidConfig(
                "size-thresholded runs are not checkpointable and cannot be resumed",
            ));
        }
        if self.opts.algorithm != ckpt.algorithm
            || self.opts.order != ckpt.order
            || self.opts.mbet != ckpt.mbet
        {
            return Err(MbeError::InvalidConfig(
                "resume pins the checkpoint's algorithm, order, and mbet toggles; \
                 only threads and splitting may change",
            ));
        }
        ckpt.matches(self.g)?;
        Ok(())
    }

    /// Builds the `Report::checkpoint` for a finished segment: `None`
    /// when the run completed, otherwise the captured frontier plus a
    /// cumulative emitted count (checkpoints chain across resumes).
    fn make_checkpoint(
        &self,
        stop: StopReason,
        emitted_now: u64,
        frontier: Vec<ResumeTask>,
    ) -> Option<Checkpoint> {
        if stop.is_complete() {
            return None;
        }
        Some(Checkpoint {
            fingerprint: self
                .resume
                .as_ref()
                .map_or_else(|| graph_fingerprint(self.g), |c| c.fingerprint),
            algorithm: self.opts.algorithm,
            order: self.opts.order,
            mbet: self.opts.mbet,
            emitted: self.resume.as_ref().map_or(0, |c| c.emitted) + emitted_now,
            stop,
            frontier,
        })
    }

    /// Runs and collects every emitted biclique into the report.
    pub fn collect(self) -> Result<Report, MbeError> {
        self.validate()?;
        self.validate_resume()?;
        let obs = self.obs_ctx();
        self.note_run_start(&obs);
        if let Some(thr) = self.thresholds {
            let mut sink = CollectSink::new();
            let (stats, stop) =
                crate::filtered::run_filtered(self.g, thr, &self.control, &mut sink);
            let report = Report {
                bicliques: sink.into_vec(),
                stats,
                stop,
                checkpoint: None,
                metrics: RunMetrics::default(),
            };
            crate::invariants::check_stopped_collect(
                self.g,
                &self.opts,
                Some(thr),
                &report.bicliques,
                report.stop,
                None,
            );
            Self::note_run_end(&obs, &report);
            return Ok(report);
        }
        let resume_tasks = self.resume.as_ref().map(|c| c.frontier.as_slice());
        let (bicliques, out, panic) = if self.opts.threads == 1 {
            let sink = CollectSink::new();
            #[cfg(feature = "fault-injection")]
            let sink = crate::faults::FaultySink::new(self.faults.clone(), sink);
            let mut sink = sink;
            let out = run_serial_resumable(
                self.g,
                &self.opts,
                &self.control,
                &mut sink,
                resume_tasks,
                obs,
            );
            #[cfg(feature = "fault-injection")]
            let sink = sink.into_inner();
            (sink.into_vec(), out, None)
        } else {
            let par = crate::parallel::par_run(
                self.g,
                &self.opts,
                &self.control,
                resume_tasks,
                obs,
                |_| {
                    #[cfg(feature = "fault-injection")]
                    {
                        crate::faults::FaultySink::new(self.faults.clone(), CollectSink::new())
                    }
                    #[cfg(not(feature = "fault-injection"))]
                    {
                        CollectSink::new()
                    }
                },
            )?;
            let mut bicliques = Vec::new();
            for s in par.sinks {
                #[cfg(feature = "fault-injection")]
                let s = s.into_inner();
                bicliques.extend(s.into_vec());
            }
            (
                bicliques,
                RunOutcome {
                    stats: par.stats,
                    stop: par.stop,
                    frontier: par.frontier,
                    metrics: par.metrics,
                },
                par.panic,
            )
        };
        let checkpoint = self.make_checkpoint(out.stop, out.stats.emitted, out.frontier);
        let report = Report {
            bicliques,
            stats: out.stats,
            stop: out.stop,
            checkpoint,
            metrics: out.metrics,
        };
        if let Some(p) = panic {
            // Flush-before-fail: trace observers see run_end (with the
            // WorkerPanicked stop) even though the terminal errors.
            Self::note_run_end(&obs, &report);
            return Err(MbeError::WorkerPanic {
                task: p.task,
                payload: p.payload,
                report: Box::new(report),
            });
        }
        Self::note_run_end(&obs, &report);
        crate::invariants::check_stopped_collect(
            self.g,
            &self.opts,
            None,
            &report.bicliques,
            report.stop,
            // The emitted ∪ resumed = complete equality only makes sense
            // for a first segment; a resumed segment is missing whatever
            // earlier segments emitted.
            if self.resume.is_none() { report.checkpoint.as_ref() } else { None },
        );
        Ok(report)
    }

    /// Runs and counts emissions without storing them
    /// ([`Report::bicliques`] stays empty; use [`Report::count`]).
    pub fn count(self) -> Result<Report, MbeError> {
        self.validate()?;
        self.validate_resume()?;
        let obs = self.obs_ctx();
        self.note_run_start(&obs);
        if let Some(thr) = self.thresholds {
            let mut sink = CountSink::default();
            let (stats, stop) =
                crate::filtered::run_filtered(self.g, thr, &self.control, &mut sink);
            let report = Report {
                bicliques: Vec::new(),
                stats,
                stop,
                checkpoint: None,
                metrics: RunMetrics::default(),
            };
            Self::note_run_end(&obs, &report);
            return Ok(report);
        }
        let resume_tasks = self.resume.as_ref().map(|c| c.frontier.as_slice());
        let (out, panic) = if self.opts.threads == 1 {
            let mut sink = CountSink::default();
            let out = run_serial_resumable(
                self.g,
                &self.opts,
                &self.control,
                &mut sink,
                resume_tasks,
                obs,
            );
            (out, None)
        } else {
            let par = crate::parallel::par_run(
                self.g,
                &self.opts,
                &self.control,
                resume_tasks,
                obs,
                |_| CountSink::default(),
            )?;
            (
                RunOutcome {
                    stats: par.stats,
                    stop: par.stop,
                    frontier: par.frontier,
                    metrics: par.metrics,
                },
                par.panic,
            )
        };
        let checkpoint = self.make_checkpoint(out.stop, out.stats.emitted, out.frontier);
        let report = Report {
            bicliques: Vec::new(),
            stats: out.stats,
            stop: out.stop,
            checkpoint,
            metrics: out.metrics,
        };
        Self::note_run_end(&obs, &report);
        if let Some(p) = panic {
            return Err(MbeError::WorkerPanic {
                task: p.task,
                payload: p.payload,
                report: Box::new(report),
            });
        }
        Ok(report)
    }

    /// Streams every emission into `sink` on the serial driver
    /// (regardless of `threads` — a single sink cannot be shared across
    /// workers; use [`run_per_worker`](Enumeration::run_per_worker) for
    /// that). The report's `bicliques` stay empty; the sink holds the
    /// results.
    pub fn run<S: BicliqueSink>(self, sink: &mut S) -> Result<Report, MbeError> {
        self.validate_resume()?;
        let obs = self.obs_ctx();
        self.note_run_start(&obs);
        if let Some(thr) = self.thresholds {
            let (stats, stop) = crate::filtered::run_filtered(self.g, thr, &self.control, sink);
            let report = Report {
                bicliques: Vec::new(),
                stats,
                stop,
                checkpoint: None,
                metrics: RunMetrics::default(),
            };
            Self::note_run_end(&obs, &report);
            return Ok(report);
        }
        let resume_tasks = self.resume.as_ref().map(|c| c.frontier.as_slice());
        let out = run_serial_resumable(self.g, &self.opts, &self.control, sink, resume_tasks, obs);
        let checkpoint = self.make_checkpoint(out.stop, out.stats.emitted, out.frontier);
        let report = Report {
            bicliques: Vec::new(),
            stats: out.stats,
            stop: out.stop,
            checkpoint,
            metrics: out.metrics,
        };
        Self::note_run_end(&obs, &report);
        Ok(report)
    }

    /// Runs on the parallel driver with one sink per worker (built by
    /// `make_sink(worker_index)`), returning the sinks alongside the
    /// report. Respects `threads` (`0` = all cores); `threads == 1` still
    /// spawns a single worker so per-worker sinks behave uniformly.
    ///
    /// A contained worker panic returns [`MbeError::WorkerPanic`]; the
    /// per-worker sinks are dropped in that case (the error's report
    /// still carries the stats and the checkpoint).
    pub fn run_per_worker<S, F>(self, make_sink: F) -> Result<(Vec<S>, Report), MbeError>
    where
        S: BicliqueSink + Send,
        F: Fn(usize) -> S + Sync,
    {
        if self.thresholds.is_some() {
            return Err(MbeError::InvalidConfig(
                "size-thresholded enumeration runs on the serial driver; use .run()",
            ));
        }
        self.validate_resume()?;
        let obs = self.obs_ctx();
        self.note_run_start(&obs);
        let resume_tasks = self.resume.as_ref().map(|c| c.frontier.as_slice());
        let par = crate::parallel::par_run(
            self.g,
            &self.opts,
            &self.control,
            resume_tasks,
            obs,
            make_sink,
        )?;
        let checkpoint = self.make_checkpoint(par.stop, par.stats.emitted, par.frontier);
        let report = Report {
            bicliques: Vec::new(),
            stats: par.stats,
            stop: par.stop,
            checkpoint,
            metrics: par.metrics,
        };
        Self::note_run_end(&obs, &report);
        if let Some(p) = par.panic {
            return Err(MbeError::WorkerPanic {
                task: p.task,
                payload: p.payload,
                report: Box::new(report),
            });
        }
        Ok((par.sinks, report))
    }
}

/// What a serial segment produced: the stats, the stop reason, for
/// stopped segments the captured unexplored frontier (internal ids), and
/// the per-worker telemetry.
pub(crate) struct RunOutcome {
    pub(crate) stats: Stats,
    pub(crate) stop: StopReason,
    pub(crate) frontier: Vec<ResumeTask>,
    pub(crate) metrics: RunMetrics,
}

/// Serial enumeration core shared by the builder terminals: applies
/// the vertex order, then either runs every
/// root task (`resume == None`) or replays a checkpointed frontier
/// (`resume == Some`), under `control`, reporting through `obs`. A
/// stopped run's unexplored frontier comes back in the outcome.
pub(crate) fn run_serial_resumable<S: BicliqueSink>(
    g: &BipartiteGraph,
    opts: &MbeOptions,
    control: &RunControl,
    sink: &mut S,
    resume: Option<&[ResumeTask]>,
    obs: ObsCtx<'_>,
) -> RunOutcome {
    let (h, perm) = bigraph::order::apply(g, opts.order);
    let mut stats = Stats::default();
    let mut frontier = Vec::new();
    let mut wm = WorkerMetrics::new(0);
    let start = Instant::now();
    let stop = {
        let mut mapped = crate::sink::MapRight::new(sink, &perm);
        let mut driver = crate::task::SerialDriver::new(&h, opts);
        match resume {
            Some(tasks) => driver.run_frontier(
                tasks,
                &mut mapped,
                &mut stats,
                control,
                &mut frontier,
                obs,
                &mut wm,
            ),
            None => driver.run_all_capturing(
                &mut mapped,
                &mut stats,
                control,
                &mut frontier,
                obs,
                &mut wm,
            ),
        }
    };
    if stop.is_complete() {
        // Holds for resumed segments too: every frontier task's subtree
        // ran to completion, and the identity composes over subtrees.
        crate::invariants::check_counter_identity(&stats);
    }
    stats.elapsed = start.elapsed();
    RunOutcome { stats, stop, frontier, metrics: RunMetrics::from_single(wm) }
}

/// One-shot serial enumeration: like [`run_serial_resumable`] with no
/// resume, discarding the frontier. Kept as the reference execution the
/// `debug-invariants` harness replays parallel and stopped runs against.
#[cfg_attr(not(feature = "debug-invariants"), allow(dead_code))]
pub(crate) fn run_serial<S: BicliqueSink>(
    g: &BipartiteGraph,
    opts: &MbeOptions,
    control: &RunControl,
    sink: &mut S,
) -> (Stats, StopReason) {
    let out = run_serial_resumable(g, opts, control, sink, None, ObsCtx::noop());
    (out.stats, out.stop)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_graph() -> BipartiteGraph {
        // A 2x2 complete block plus a pendant edge: 2 maximal bicliques.
        BipartiteGraph::from_edges(3, 3, &[(0, 0), (0, 1), (1, 0), (1, 1), (2, 2)]).unwrap()
    }

    #[test]
    fn stop_reason_roundtrip_and_labels() {
        let all = [
            StopReason::Completed,
            StopReason::Cancelled,
            StopReason::Deadline,
            StopReason::EmitBudget,
            StopReason::NodeBudget,
            StopReason::SinkStopped,
            StopReason::WorkerPanicked,
        ];
        let labels: std::collections::HashSet<_> = all.iter().map(|r| r.label()).collect();
        assert_eq!(labels.len(), all.len());
        for r in all {
            assert_eq!(StopReason::decode(r.encode()), Some(r));
        }
        assert_eq!(StopReason::decode(0), None);
        assert!(StopReason::Completed.is_complete());
        assert!(!StopReason::Cancelled.is_complete());
    }

    #[test]
    fn control_state_first_stop_wins() {
        let control = RunControl::new();
        let state = ControlState::new(&control);
        assert_eq!(state.reason(), StopReason::Completed);
        assert_eq!(state.note_stop(StopReason::Deadline), StopReason::Deadline);
        assert_eq!(state.note_stop(StopReason::Cancelled), StopReason::Deadline);
        assert_eq!(state.reason(), StopReason::Deadline);
    }

    #[test]
    fn admit_enforces_exact_emit_budget() {
        let control = RunControl::new().max_emitted(3);
        let state = ControlState::new(&control);
        for _ in 0..3 {
            assert!(state.admit().is_continue());
        }
        assert_eq!(state.admit(), ControlFlow::Break(StopReason::EmitBudget));
        // Sticky after the first break.
        assert_eq!(state.admit(), ControlFlow::Break(StopReason::EmitBudget));
    }

    #[test]
    fn admit_observes_cancellation_and_deadline() {
        let control = RunControl::new();
        let shared = control.clone();
        let state = ControlState::new(&control);
        assert!(state.admit().is_continue());
        shared.cancel();
        assert_eq!(state.admit(), ControlFlow::Break(StopReason::Cancelled));

        let expired = RunControl::new().deadline(Instant::now() - Duration::from_millis(1));
        let state = ControlState::new(&expired);
        assert_eq!(state.admit(), ControlFlow::Break(StopReason::Deadline));
    }

    #[test]
    fn note_task_enforces_node_budget() {
        let control = RunControl::new().max_nodes(10);
        let state = ControlState::new(&control);
        assert!(state.note_task(9).is_continue());
        assert_eq!(state.note_task(1), ControlFlow::Break(StopReason::NodeBudget));
    }

    #[test]
    fn builder_collect_completes() {
        let g = block_graph();
        let report = Enumeration::new(&g).collect().unwrap();
        assert!(report.is_complete());
        assert_eq!(report.bicliques.len(), 2);
        assert_eq!(report.count(), 2);
    }

    #[test]
    fn builder_count_matches_collect() {
        let g = block_graph();
        let collected = Enumeration::new(&g).collect().unwrap();
        let counted = Enumeration::new(&g).count().unwrap();
        assert_eq!(counted.count(), collected.bicliques.len() as u64);
        assert!(counted.bicliques.is_empty());
    }

    #[test]
    fn emit_budget_is_exact_serial() {
        let g = block_graph();
        let report = Enumeration::new(&g).max_bicliques(1).collect().unwrap();
        assert_eq!(report.stop, StopReason::EmitBudget);
        assert_eq!(report.bicliques.len(), 1);
    }

    #[test]
    fn budget_larger_than_output_completes() {
        let g = block_graph();
        let report = Enumeration::new(&g).max_bicliques(100).collect().unwrap();
        assert_eq!(report.stop, StopReason::Completed);
        assert_eq!(report.bicliques.len(), 2);
    }

    #[test]
    fn pre_cancelled_run_emits_nothing() {
        let g = block_graph();
        let control = RunControl::new();
        control.cancel();
        let report = Enumeration::new(&g).control(control).collect().unwrap();
        assert_eq!(report.stop, StopReason::Cancelled);
        assert!(report.bicliques.is_empty());
    }

    #[test]
    fn thresholds_reject_parallel() {
        let g = block_graph();
        let err = Enumeration::new(&g)
            .thresholds(SizeThresholds::new(1, 1))
            .threads(2)
            .collect()
            .unwrap_err();
        assert!(matches!(err, MbeError::InvalidConfig(_)));
    }

    #[test]
    fn error_display_is_informative() {
        let e = MbeError::InvalidConfig("nope");
        assert!(e.to_string().contains("nope"));
        assert!(MbeError::Spawn("io".into()).to_string().contains("io"));
        let _ = MbeError::WorkerPanicked.to_string();
        let wp = MbeError::WorkerPanic {
            task: "node task v=3".into(),
            payload: "boom".into(),
            report: Box::new(Report::default()),
        };
        assert!(wp.to_string().contains("node task v=3"));
        assert!(wp.to_string().contains("boom"));
        let ce = MbeError::from(CheckpointError::BadMagic);
        assert!(ce.to_string().contains("magic"));
    }

    #[test]
    fn resume_rejects_mutated_options_and_foreign_graph() {
        let g = block_graph();
        let report = Enumeration::new(&g).max_bicliques(1).collect().unwrap();
        let ckpt = report.checkpoint.expect("stopped run must carry a checkpoint");

        // Mutating a pinned option after resume() is rejected.
        let err = Enumeration::new(&g)
            .resume(ckpt.clone())
            .algorithm(Algorithm::Mbea)
            .collect()
            .unwrap_err();
        assert!(matches!(err, MbeError::InvalidConfig(_)));

        // Resuming against a different graph is rejected.
        let other = BipartiteGraph::from_edges(3, 3, &[(0, 0), (1, 1), (2, 2)]).unwrap();
        let err = Enumeration::new(&other).resume(ckpt.clone()).collect().unwrap_err();
        assert!(matches!(err, MbeError::Checkpoint(CheckpointError::GraphMismatch { .. })));

        // Thresholds and resume don't mix.
        let err = Enumeration::new(&g)
            .resume(ckpt)
            .thresholds(SizeThresholds::new(1, 1))
            .collect()
            .unwrap_err();
        assert!(matches!(err, MbeError::InvalidConfig(_)));
    }

    #[test]
    fn stopped_then_resumed_equals_complete_serial() {
        let g = block_graph();
        let complete = Enumeration::new(&g).collect().unwrap();
        let stopped = Enumeration::new(&g).max_bicliques(1).collect().unwrap();
        let ckpt = stopped.checkpoint.clone().expect("checkpoint");
        assert_eq!(ckpt.emitted, stopped.bicliques.len() as u64);
        let resumed = Enumeration::new(&g).resume(ckpt).collect().unwrap();
        assert!(resumed.is_complete());
        assert!(resumed.checkpoint.is_none());
        let mut union: Vec<_> =
            stopped.bicliques.iter().chain(resumed.bicliques.iter()).cloned().collect();
        union.sort();
        union.dedup();
        assert_eq!(union.len(), stopped.bicliques.len() + resumed.bicliques.len());
        let mut want = complete.bicliques;
        want.sort();
        assert_eq!(union, want);
    }

    #[test]
    fn completed_run_has_no_checkpoint() {
        let g = block_graph();
        let report = Enumeration::new(&g).collect().unwrap();
        assert!(report.checkpoint.is_none());
    }
}
