//! Run telemetry: observer hooks, trace export, and emission sampling.
//!
//! Long enumerations are black boxes without instrumentation: the flat
//! end-of-run [`Stats`] cannot say *where* a parallel run spent its time,
//! which workers starved, or how task latency was distributed. This
//! module is the zero-dependency observability layer both drivers report
//! through:
//!
//! * [`Observer`] — a trait of hook points (run/segment start+end, task
//!   start/finish with duration and per-task counters, worker
//!   steal/idle transitions, periodic emission samples, stop-reason
//!   resolution, checkpoint capture). Every hook has a no-op default.
//! * [`JsonlTraceObserver`] — writes one hand-rolled JSON object per
//!   event (schema [`TRACE_SCHEMA_VERSION`]) so runs can be replayed and
//!   diffed offline; validated by `cargo run -p xtask -- trace-check`.
//! * [`FanoutObserver`] — composes several observers into one.
//!
//! # Hot-path contract
//!
//! Observers are threaded through the drivers as an `Option<&dyn
//! Observer>`: with no observer attached the per-task cost is a single
//! predictable null check, and **no hook allocates on the caller's
//! behalf** — every payload ([`TaskInfo`], [`TaskDelta`], …) is a stack
//! value borrowing driver state. Hook implementations must honor the
//! same contract on the emission path (`on_emit_sample` fires inside the
//! sink chain): do bounded work, never block on I/O per event.
//! [`JsonlTraceObserver`] complies by buffering through one reusable
//! `String` behind a mutex and flushing only at run end. Emission
//! sampling is decimated driver-side (default every
//! [`DEFAULT_SAMPLE_EVERY`] delivered emissions, configurable via
//! [`crate::Enumeration::sample_every`]), so the per-emission cost is an
//! increment and a divisibility test.
//!
//! Hooks observing shared progress (`on_stop`, `on_emit_sample`,
//! per-worker task hooks) may be called concurrently from different
//! workers; [`Observer`] therefore requires [`Sync`] and takes `&self`.

use std::io::Write as _;
use std::ops::ControlFlow;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::metrics::Stats;
use crate::run::StopReason;
use crate::sink::BicliqueSink;
use crate::Algorithm;

/// Version of the JSONL trace event schema emitted by
/// [`JsonlTraceObserver`] (the `"v"` field of every line). Bump on any
/// incompatible change and document the delta in DESIGN.md §8.
///
/// v2 (over v1): the `run_start` header line gains a mandatory
/// `"anchor"` field — wall-clock UNIX-epoch microseconds captured at
/// observer creation — so run-relative `t_us` timestamps from
/// different processes can be aligned on one wall-clock axis; it also
/// gains optional `"trace"`/`"parent"` fields carrying a distributed
/// trace context (see [`JsonlTraceObserver::set_trace_context`]). All
/// other events are unchanged; validators keep accepting v1.
pub const TRACE_SCHEMA_VERSION: u32 = 2;

/// Default emission-sampling cadence: `on_emit_sample` fires once per
/// this many delivered emissions per worker.
pub const DEFAULT_SAMPLE_EVERY: u64 = 1024;

/// Context handed to [`Observer::on_run_start`]: what the run was
/// configured to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunContext {
    /// The engine the run uses.
    pub algorithm: Algorithm,
    /// Configured worker count (`1` serial, `0` = all cores, pre-resolution).
    pub threads: usize,
    /// `true` when the run replays a checkpointed frontier.
    pub resumed: bool,
}

/// Which driver a segment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverKind {
    /// The in-order serial driver.
    Serial,
    /// The work-stealing parallel driver.
    Parallel,
}

impl DriverKind {
    /// Short label used in traces and tables.
    pub fn label(self) -> &'static str {
        match self {
            DriverKind::Serial => "serial",
            DriverKind::Parallel => "parallel",
        }
    }
}

/// Context handed to [`Observer::on_segment_start`]: one driver
/// invocation (a fresh run and each resumed continuation are segments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentInfo {
    /// The driver this segment runs on.
    pub driver: DriverKind,
    /// Resolved worker count (always `1` for the serial driver).
    pub workers: usize,
    /// Tasks seeded into the pool (root sweep or checkpointed frontier).
    pub seeded_tasks: u64,
    /// `true` when the segment replays a checkpointed frontier.
    pub resumed: bool,
}

/// What kind of task a worker picked up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// A per-root-vertex task (the whole subtree of one right vertex).
    Root,
    /// A checkpointed or split-off interior node replayed as a task.
    Node,
    /// A node processed in split mode: emit once, enqueue the children.
    Split,
}

impl TaskKind {
    /// Short label used in traces.
    pub fn label(self) -> &'static str {
        match self {
            TaskKind::Root => "root",
            TaskKind::Node => "node",
            TaskKind::Split => "split",
        }
    }
}

/// Identity of one unit of work, handed to the task hooks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskInfo {
    /// The task's defining right vertex (internal, post-ordering id).
    pub v: u32,
    /// What kind of task it is.
    pub kind: TaskKind,
}

/// Per-task counter deltas handed to [`Observer::on_task_finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TaskDelta {
    /// Enumeration nodes the task expanded.
    pub nodes: u64,
    /// Bicliques the task delivered to the sink.
    pub emitted: u64,
    /// Deepest recursion the task reached (0 for split-mode tasks, which
    /// process a single node).
    pub depth: u64,
}

/// Hook points every enumeration run reports through.
///
/// All hooks default to no-ops, so implementors override only what they
/// need. Hooks may be invoked concurrently from multiple workers (hence
/// the [`Sync`] supertrait and `&self` receivers); per-worker hooks
/// carry the worker index. See the module docs for the hot-path
/// contract implementations must honor.
pub trait Observer: Sync {
    /// The run is about to start (fired once per terminal call).
    fn on_run_start(&self, _ctx: &RunContext) {}
    /// The run finished; `stats` is the merged final count set. Fired on
    /// every exit path, including a contained worker panic — trace
    /// observers flush here.
    fn on_run_end(&self, _stop: StopReason, _stats: &Stats) {}
    /// A driver segment is about to start.
    fn on_segment_start(&self, _seg: &SegmentInfo) {}
    /// The segment finished with `stop`; `stats` covers this segment.
    fn on_segment_end(&self, _stop: StopReason, _stats: &Stats) {}
    /// Worker `worker` picked up `task`.
    fn on_task_start(&self, _worker: usize, _task: &TaskInfo) {}
    /// Worker `worker` finished `task` in `elapsed`, moving the counters
    /// by `delta`. Not fired for a task that panicked (the run ends with
    /// [`StopReason::WorkerPanicked`] instead).
    fn on_task_finish(
        &self,
        _worker: usize,
        _task: &TaskInfo,
        _elapsed: Duration,
        _delta: &TaskDelta,
    ) {
    }
    /// Worker `worker` obtained its task by stealing from a peer.
    fn on_steal(&self, _worker: usize) {}
    /// Worker `worker` found no work and is entering its idle loop.
    fn on_idle(&self, _worker: usize) {}
    /// Worker `worker` has delivered `emitted` bicliques so far (fired
    /// once per sampling interval, see [`DEFAULT_SAMPLE_EVERY`]).
    fn on_emit_sample(&self, _worker: usize, _emitted: u64) {}
    /// A stop reason was recorded as the run's first (winning) stop.
    fn on_stop(&self, _reason: StopReason) {}
    /// A stopped run captured a resumable checkpoint covering `tasks`
    /// frontier tasks after `emitted` cumulative emissions.
    fn on_checkpoint(&self, _tasks: u64, _emitted: u64) {}
}

/// The do-nothing observer: the default when none is attached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl Observer for NoopObserver {}

/// A shared reference to an observer is itself an observer, so callers
/// can compose a [`FanoutObserver`] from borrowed observers and still
/// reach them afterwards (e.g. [`JsonlTraceObserver::take_error`]).
impl<O: Observer + ?Sized> Observer for &O {
    fn on_run_start(&self, ctx: &RunContext) {
        (**self).on_run_start(ctx);
    }
    fn on_run_end(&self, stop: StopReason, stats: &Stats) {
        (**self).on_run_end(stop, stats);
    }
    fn on_segment_start(&self, seg: &SegmentInfo) {
        (**self).on_segment_start(seg);
    }
    fn on_segment_end(&self, stop: StopReason, stats: &Stats) {
        (**self).on_segment_end(stop, stats);
    }
    fn on_task_start(&self, worker: usize, task: &TaskInfo) {
        (**self).on_task_start(worker, task);
    }
    fn on_task_finish(&self, worker: usize, task: &TaskInfo, elapsed: Duration, delta: &TaskDelta) {
        (**self).on_task_finish(worker, task, elapsed, delta);
    }
    fn on_steal(&self, worker: usize) {
        (**self).on_steal(worker);
    }
    fn on_idle(&self, worker: usize) {
        (**self).on_idle(worker);
    }
    fn on_emit_sample(&self, worker: usize, emitted: u64) {
        (**self).on_emit_sample(worker, emitted);
    }
    fn on_stop(&self, reason: StopReason) {
        (**self).on_stop(reason);
    }
    fn on_checkpoint(&self, tasks: u64, emitted: u64) {
        (**self).on_checkpoint(tasks, emitted);
    }
}

/// Fans every hook out to a list of observers, in push order.
///
/// The CLI uses this to combine `--trace` and `--progress` into the one
/// observer slot of [`crate::Enumeration::observer`]. The `'a` lifetime
/// lets it hold borrowed observers (boxed `&O`, see the reference
/// `impl`), so the caller keeps access to them after the run.
#[derive(Default)]
pub struct FanoutObserver<'a> {
    observers: Vec<Box<dyn Observer + Send + 'a>>,
}

impl<'a> FanoutObserver<'a> {
    /// An empty fanout (all hooks no-op until observers are pushed).
    pub fn new() -> Self {
        FanoutObserver::default()
    }

    /// Appends an observer; hooks fire in push order.
    pub fn push(&mut self, obs: Box<dyn Observer + Send + 'a>) {
        self.observers.push(obs);
    }

    /// Number of composed observers.
    pub fn len(&self) -> usize {
        self.observers.len()
    }

    /// `true` iff no observers are composed.
    pub fn is_empty(&self) -> bool {
        self.observers.is_empty()
    }
}

impl Observer for FanoutObserver<'_> {
    fn on_run_start(&self, ctx: &RunContext) {
        for o in &self.observers {
            o.on_run_start(ctx);
        }
    }
    fn on_run_end(&self, stop: StopReason, stats: &Stats) {
        for o in &self.observers {
            o.on_run_end(stop, stats);
        }
    }
    fn on_segment_start(&self, seg: &SegmentInfo) {
        for o in &self.observers {
            o.on_segment_start(seg);
        }
    }
    fn on_segment_end(&self, stop: StopReason, stats: &Stats) {
        for o in &self.observers {
            o.on_segment_end(stop, stats);
        }
    }
    fn on_task_start(&self, worker: usize, task: &TaskInfo) {
        for o in &self.observers {
            o.on_task_start(worker, task);
        }
    }
    fn on_task_finish(&self, worker: usize, task: &TaskInfo, elapsed: Duration, delta: &TaskDelta) {
        for o in &self.observers {
            o.on_task_finish(worker, task, elapsed, delta);
        }
    }
    fn on_steal(&self, worker: usize) {
        for o in &self.observers {
            o.on_steal(worker);
        }
    }
    fn on_idle(&self, worker: usize) {
        for o in &self.observers {
            o.on_idle(worker);
        }
    }
    fn on_emit_sample(&self, worker: usize, emitted: u64) {
        for o in &self.observers {
            o.on_emit_sample(worker, emitted);
        }
    }
    fn on_stop(&self, reason: StopReason) {
        for o in &self.observers {
            o.on_stop(reason);
        }
    }
    fn on_checkpoint(&self, tasks: u64, emitted: u64) {
        for o in &self.observers {
            o.on_checkpoint(tasks, emitted);
        }
    }
}

/// The per-worker observer context the drivers thread around: the
/// optional observer, the sampling cadence, and this worker's index.
/// `Copy`, two words wide, and a no-op when no observer is attached.
#[derive(Clone, Copy)]
pub(crate) struct ObsCtx<'a> {
    obs: Option<&'a dyn Observer>,
    pub(crate) every: u64,
    pub(crate) worker: usize,
}

impl<'a> ObsCtx<'a> {
    pub(crate) fn new(obs: Option<&'a dyn Observer>, every: u64) -> Self {
        ObsCtx { obs, every: every.max(1), worker: 0 }
    }

    pub(crate) fn noop() -> Self {
        ObsCtx { obs: None, every: DEFAULT_SAMPLE_EVERY, worker: 0 }
    }

    /// The same context re-addressed to worker `worker`.
    pub(crate) fn for_worker(self, worker: usize) -> Self {
        ObsCtx { worker, ..self }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.obs.is_some()
    }

    pub(crate) fn run_start(&self, ctx: &RunContext) {
        if let Some(o) = self.obs {
            o.on_run_start(ctx);
        }
    }

    pub(crate) fn run_end(&self, stop: StopReason, stats: &Stats) {
        if let Some(o) = self.obs {
            o.on_run_end(stop, stats);
        }
    }

    pub(crate) fn segment_start(&self, seg: &SegmentInfo) {
        if let Some(o) = self.obs {
            o.on_segment_start(seg);
        }
    }

    pub(crate) fn segment_end(&self, stop: StopReason, stats: &Stats) {
        if let Some(o) = self.obs {
            o.on_segment_end(stop, stats);
        }
    }

    pub(crate) fn task_start(&self, task: &TaskInfo) {
        if let Some(o) = self.obs {
            o.on_task_start(self.worker, task);
        }
    }

    pub(crate) fn task_finish(&self, task: &TaskInfo, elapsed: Duration, delta: &TaskDelta) {
        if let Some(o) = self.obs {
            o.on_task_finish(self.worker, task, elapsed, delta);
        }
    }

    pub(crate) fn steal(&self) {
        if let Some(o) = self.obs {
            o.on_steal(self.worker);
        }
    }

    pub(crate) fn idle(&self) {
        if let Some(o) = self.obs {
            o.on_idle(self.worker);
        }
    }

    pub(crate) fn sample(&self, emitted: u64) {
        if let Some(o) = self.obs {
            o.on_emit_sample(self.worker, emitted);
        }
    }

    pub(crate) fn stop(&self, reason: StopReason) {
        if let Some(o) = self.obs {
            o.on_stop(reason);
        }
    }

    pub(crate) fn checkpoint(&self, tasks: u64, emitted: u64) {
        if let Some(o) = self.obs {
            o.on_checkpoint(tasks, emitted);
        }
    }
}

/// Sink adapter counting *delivered* emissions per worker and firing
/// `on_emit_sample` at the configured cadence. Sits between the control
/// gate and the mapping/user sink, so its count equals this worker's
/// contribution to `Stats::emitted`.
pub(crate) struct RecordingSink<'a, S: BicliqueSink> {
    inner: &'a mut S,
    obs: ObsCtx<'a>,
    emitted: u64,
}

impl<'a, S: BicliqueSink> RecordingSink<'a, S> {
    #[cfg(test)]
    pub(crate) fn new(inner: &'a mut S, obs: ObsCtx<'a>) -> Self {
        RecordingSink::with_base(inner, obs, 0)
    }

    /// Like [`new`](Self::new) but continuing the delivered-emission
    /// count from `base`, so the sampling cadence survives segment (or
    /// per-task sink rebuild) boundaries.
    pub(crate) fn with_base(inner: &'a mut S, obs: ObsCtx<'a>, base: u64) -> Self {
        RecordingSink { inner, obs, emitted: base }
    }

    /// Emissions delivered through this sink so far.
    #[cfg(test)]
    pub(crate) fn emitted(&self) -> u64 {
        self.emitted
    }
}

impl<S: BicliqueSink> BicliqueSink for RecordingSink<'_, S> {
    fn emit(&mut self, left: &[u32], right: &[u32]) -> ControlFlow<StopReason> {
        self.inner.emit(left, right)?;
        // Only delivered emissions count (a Break above means the
        // emission was rejected and will be re-delivered on resume).
        self.emitted += 1;
        if self.obs.enabled() && self.emitted.is_multiple_of(self.obs.every) {
            self.obs.sample(self.emitted);
        }
        ControlFlow::Continue(())
    }
}

/// Mutable state of a [`JsonlTraceObserver`], serialized by one mutex so
/// event timestamps are taken and written atomically (concurrent hooks
/// cannot interleave out of timestamp order).
struct TraceInner {
    out: std::io::BufWriter<std::fs::File>,
    start: Instant,
    /// Wall-clock UNIX-epoch µs captured at creation: the `anchor`
    /// field of the `run_start` header line (schema v2).
    anchor_us: u64,
    /// Distributed trace context stamped onto the header line, set via
    /// [`JsonlTraceObserver::set_trace_context`] before the run starts.
    trace: Option<(u64, u64)>,
    last_us: u64,
    buf: String,
    error: Option<std::io::Error>,
}

/// Writes every hook as one JSONL event (hand-rolled, no serde — the
/// same vendored-only constraint as `checkpoint.rs`).
///
/// One line per event, e.g.:
///
/// ```text
/// {"v":2,"t_us":1423,"ev":"task_finish","w":0,"task":5,"kind":"root","us":87,"nodes":12,"emitted":4,"depth":3}
/// ```
///
/// Every line carries the schema version `"v"` ([`TRACE_SCHEMA_VERSION`]),
/// a microsecond timestamp `"t_us"` relative to observer creation
/// (monotone non-decreasing: timestamps are assigned under the writer
/// lock), and the event name `"ev"`. Validate a trace with
/// `cargo run -p xtask -- trace-check <path>`; the full event catalogue
/// is in DESIGN.md §8.
///
/// Output is buffered and flushed at `on_run_end` (which fires on panic
/// containment too) and on drop. Write errors never panic the run: the
/// first one is parked and retrievable via
/// [`take_error`](JsonlTraceObserver::take_error).
pub struct JsonlTraceObserver {
    inner: Mutex<TraceInner>,
}

impl JsonlTraceObserver {
    /// Creates (truncating) `path` and returns an observer tracing to it.
    pub fn create(path: &str) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        let anchor_us = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        Ok(JsonlTraceObserver {
            inner: Mutex::new(TraceInner {
                out: std::io::BufWriter::new(file),
                start: Instant::now(),
                anchor_us,
                trace: None,
                last_us: 0,
                buf: String::with_capacity(160),
                error: None,
            }),
        })
    }

    /// Stamps a distributed trace context onto this trace: the
    /// `run_start` header line will carry `"trace"` and `"parent"`
    /// fields, making the file joinable against a coordinator span log
    /// by trace id. Must be called before the run starts (the header is
    /// written by `on_run_start`).
    pub fn set_trace_context(&self, trace_id: u64, parent_span: u64) {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).trace =
            Some((trace_id, parent_span));
    }

    /// Takes the first write error encountered, if any (subsequent
    /// events after an error are dropped).
    pub fn take_error(&self) -> Option<std::io::Error> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).error.take()
    }

    /// Flushes buffered events to the file.
    pub fn flush(&self) -> std::io::Result<()> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).out.flush()
    }

    /// Appends one event line: the common prelude, then `fields`
    /// (each written as `,"key":value` into the shared buffer).
    fn event(&self, ev: &str, fields: impl FnOnce(&mut String)) {
        use std::fmt::Write as _;
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.error.is_some() {
            return;
        }
        // Timestamp under the lock: concurrent hooks serialize here, so
        // lines land in non-decreasing t_us order by construction.
        let us = inner.start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        let us = us.max(inner.last_us);
        inner.last_us = us;
        let mut buf = std::mem::take(&mut inner.buf);
        buf.clear();
        let _ = write!(buf, "{{\"v\":{TRACE_SCHEMA_VERSION},\"t_us\":{us},\"ev\":\"{ev}\"");
        fields(&mut buf);
        buf.push_str("}\n");
        if let Err(e) = inner.out.write_all(buf.as_bytes()) {
            inner.error = Some(e);
        }
        inner.buf = buf;
    }
}

impl Drop for JsonlTraceObserver {
    fn drop(&mut self) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = inner.out.flush();
    }
}

/// Appends `,"key":value` for a numeric value.
fn field_u64(buf: &mut String, key: &str, value: u64) {
    use std::fmt::Write as _;
    let _ = write!(buf, ",\"{key}\":{value}");
}

/// Appends `,"key":"value"` for a static label (labels are fixed ASCII
/// identifiers, so no JSON escaping is needed).
fn field_str(buf: &mut String, key: &str, value: &str) {
    use std::fmt::Write as _;
    let _ = write!(buf, ",\"{key}\":\"{value}\"");
}

impl Observer for JsonlTraceObserver {
    fn on_run_start(&self, ctx: &RunContext) {
        // The anchor and trace context are read outside `event`'s
        // closure to keep the lock acquisition single (the closure runs
        // under the same lock).
        let (anchor_us, trace) = {
            let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            (inner.anchor_us, inner.trace)
        };
        self.event("run_start", |b| {
            field_str(b, "alg", ctx.algorithm.label());
            field_u64(b, "threads", ctx.threads as u64);
            field_u64(b, "resumed", ctx.resumed as u64);
            field_u64(b, "anchor", anchor_us);
            if let Some((trace_id, parent_span)) = trace {
                field_u64(b, "trace", trace_id);
                field_u64(b, "parent", parent_span);
            }
        });
    }

    fn on_run_end(&self, stop: StopReason, stats: &Stats) {
        self.event("run_end", |b| {
            field_str(b, "stop", stop.label());
            field_u64(b, "nodes", stats.nodes);
            field_u64(b, "emitted", stats.emitted);
            field_u64(b, "tasks", stats.tasks);
        });
        let _ = self.flush();
    }

    fn on_segment_start(&self, seg: &SegmentInfo) {
        self.event("segment_start", |b| {
            field_str(b, "driver", seg.driver.label());
            field_u64(b, "workers", seg.workers as u64);
            field_u64(b, "seeded", seg.seeded_tasks);
            field_u64(b, "resumed", seg.resumed as u64);
        });
    }

    fn on_segment_end(&self, stop: StopReason, stats: &Stats) {
        self.event("segment_end", |b| {
            field_str(b, "stop", stop.label());
            field_u64(b, "nodes", stats.nodes);
            field_u64(b, "emitted", stats.emitted);
        });
    }

    fn on_task_start(&self, worker: usize, task: &TaskInfo) {
        self.event("task_start", |b| {
            field_u64(b, "w", worker as u64);
            field_u64(b, "task", task.v as u64);
            field_str(b, "kind", task.kind.label());
        });
    }

    fn on_task_finish(&self, worker: usize, task: &TaskInfo, elapsed: Duration, delta: &TaskDelta) {
        self.event("task_finish", |b| {
            field_u64(b, "w", worker as u64);
            field_u64(b, "task", task.v as u64);
            field_str(b, "kind", task.kind.label());
            field_u64(b, "us", elapsed.as_micros().min(u64::MAX as u128) as u64);
            field_u64(b, "nodes", delta.nodes);
            field_u64(b, "emitted", delta.emitted);
            field_u64(b, "depth", delta.depth);
        });
    }

    fn on_steal(&self, worker: usize) {
        self.event("steal", |b| field_u64(b, "w", worker as u64));
    }

    fn on_idle(&self, worker: usize) {
        self.event("idle", |b| field_u64(b, "w", worker as u64));
    }

    fn on_emit_sample(&self, worker: usize, emitted: u64) {
        self.event("sample", |b| {
            field_u64(b, "w", worker as u64);
            field_u64(b, "emitted", emitted);
        });
    }

    fn on_stop(&self, reason: StopReason) {
        self.event("stop", |b| field_str(b, "reason", reason.label()));
    }

    fn on_checkpoint(&self, tasks: u64, emitted: u64) {
        self.event("checkpoint", |b| {
            field_u64(b, "tasks", tasks);
            field_u64(b, "emitted", emitted);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CountSink;

    #[test]
    fn noop_observer_is_free_to_call() {
        let obs = NoopObserver;
        obs.on_run_start(&RunContext { algorithm: Algorithm::Mbet, threads: 1, resumed: false });
        obs.on_stop(StopReason::Cancelled);
        obs.on_run_end(StopReason::Cancelled, &Stats::default());
    }

    #[test]
    fn obsctx_noop_is_disabled_and_sampling_cadence_works() {
        let ctx = ObsCtx::noop();
        assert!(!ctx.enabled());
        // Hooks on a disabled context are safe no-ops.
        ctx.task_start(&TaskInfo { v: 0, kind: TaskKind::Root });
        ctx.stop(StopReason::Deadline);

        struct Count(Mutex<Vec<u64>>);
        impl Observer for Count {
            fn on_emit_sample(&self, _w: usize, emitted: u64) {
                self.0.lock().unwrap().push(emitted);
            }
        }
        let counter = Count(Mutex::new(Vec::new()));
        let ctx = ObsCtx::new(Some(&counter), 3);
        let mut inner = CountSink::default();
        let mut rec = RecordingSink::new(&mut inner, ctx);
        for _ in 0..10 {
            assert!(rec.emit(&[0], &[0]).is_continue());
        }
        assert_eq!(rec.emitted(), 10);
        assert_eq!(*counter.0.lock().unwrap(), vec![3, 6, 9]);
    }

    #[test]
    fn recording_sink_skips_rejected_emissions() {
        let mut hits = 0u64;
        {
            let mut inner = crate::FnSink(|_: &[u32], _: &[u32]| {
                hits += 1;
                crate::sink::STOP
            });
            let mut rec = RecordingSink::new(&mut inner, ObsCtx::noop());
            assert!(rec.emit(&[0], &[0]).is_break());
            assert_eq!(rec.emitted(), 0, "a Break verdict is undelivered");
        }
        assert_eq!(hits, 1);
    }

    #[test]
    fn fanout_forwards_in_order() {
        struct Tag(&'static str, std::sync::Arc<Mutex<Vec<&'static str>>>);
        impl Observer for Tag {
            fn on_stop(&self, _r: StopReason) {
                self.1.lock().unwrap().push(self.0);
            }
        }
        let log = std::sync::Arc::new(Mutex::new(Vec::new()));
        let mut fan = FanoutObserver::new();
        assert!(fan.is_empty());
        fan.push(Box::new(Tag("a", log.clone())));
        fan.push(Box::new(Tag("b", log.clone())));
        assert_eq!(fan.len(), 2);
        fan.on_stop(StopReason::Cancelled);
        assert_eq!(*log.lock().unwrap(), vec!["a", "b"]);
    }

    #[test]
    fn jsonl_trace_lines_are_versioned_and_monotone() {
        let path = std::env::temp_dir()
            .join(format!("mbe-obs-unit-{}.jsonl", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let obs = JsonlTraceObserver::create(&path).unwrap();
        obs.on_run_start(&RunContext { algorithm: Algorithm::Mbet, threads: 2, resumed: false });
        obs.on_task_start(0, &TaskInfo { v: 7, kind: TaskKind::Root });
        obs.on_task_finish(
            0,
            &TaskInfo { v: 7, kind: TaskKind::Root },
            Duration::from_micros(12),
            &TaskDelta { nodes: 3, emitted: 2, depth: 1 },
        );
        obs.on_run_end(StopReason::Completed, &Stats::default());
        assert!(obs.take_error().is_none());
        drop(obs);

        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"ev\":\"run_start\""));
        assert!(lines[0].contains("\"alg\":\"MBET\""));
        assert!(lines[3].contains("\"ev\":\"run_end\""));
        let mut last = 0u64;
        for l in &lines {
            assert!(l.starts_with(&format!("{{\"v\":{TRACE_SCHEMA_VERSION},\"t_us\":")));
            assert!(l.ends_with('}'));
            let t: u64 = l
                .split("\"t_us\":")
                .nth(1)
                .and_then(|s| s.split(',').next())
                .unwrap()
                .parse()
                .unwrap();
            assert!(t >= last, "timestamps must be non-decreasing");
            last = t;
        }
    }

    #[test]
    fn run_start_carries_anchor_and_optional_trace_context() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();

        // Without a trace context: anchor present, trace absent.
        let path = dir.join(format!("mbe-obs-anchor-{pid}.jsonl")).to_string_lossy().into_owned();
        let obs = JsonlTraceObserver::create(&path).unwrap();
        obs.on_run_start(&RunContext { algorithm: Algorithm::Mbet, threads: 1, resumed: false });
        obs.on_run_end(StopReason::Completed, &Stats::default());
        drop(obs);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let header = text.lines().next().unwrap();
        assert!(header.contains("\"anchor\":"), "{header}");
        assert!(!header.contains("\"trace\":"), "{header}");
        let anchor: u64 = header
            .split("\"anchor\":")
            .nth(1)
            .and_then(|s| s.split([',', '}']).next())
            .unwrap()
            .parse()
            .unwrap();
        assert!(anchor > 0, "wall clock anchor should be a real epoch timestamp");

        // With a trace context: both ids stamped on the header line.
        let path = dir.join(format!("mbe-obs-trace-{pid}.jsonl")).to_string_lossy().into_owned();
        let obs = JsonlTraceObserver::create(&path).unwrap();
        obs.set_trace_context(12345, 6789);
        obs.on_run_start(&RunContext { algorithm: Algorithm::Mbet, threads: 1, resumed: false });
        obs.on_run_end(StopReason::Completed, &Stats::default());
        drop(obs);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let header = text.lines().next().unwrap();
        assert!(header.contains("\"trace\":12345"), "{header}");
        assert!(header.contains("\"parent\":6789"), "{header}");
        assert!(header.contains("\"anchor\":"), "{header}");
    }
}
