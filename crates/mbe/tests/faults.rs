//! Fault-injection acceptance suite (requires `--features fault-injection`;
//! run with `debug-invariants` too for the full checkpoint cross-checks).
//!
//! Scripted faults make the failure paths deterministic: a panic at a
//! known emission index exercises the parallel driver's `catch_unwind`
//! containment, and a sink failure at a known index exercises checkpoint
//! capture and exactly-once resume.
#![cfg(feature = "fault-injection")]

use bigraph::BipartiteGraph;
use mbe::faults::FaultPlan;
use mbe::{Biclique, Enumeration, MbeError, StopReason};
use std::collections::HashSet;

/// Crown graph S(n): u_i adjacent to every v_j except j == i; 2^n − 2
/// maximal bicliques.
fn crown(n: u32) -> BipartiteGraph {
    let mut edges = Vec::with_capacity((n * (n - 1)) as usize);
    for u in 0..n {
        for v in 0..n {
            if u != v {
                edges.push((u, v));
            }
        }
    }
    BipartiteGraph::from_edges(n, n, &edges).unwrap()
}

#[test]
fn injected_worker_panic_is_contained() {
    let g = crown(12);
    for threads in [2, 4] {
        let err = Enumeration::new(&g)
            .threads(threads)
            .faults(FaultPlan::new().panic_at(50))
            .collect()
            .unwrap_err();
        let MbeError::WorkerPanic { task, payload, report } = err else {
            panic!("threads={threads}: expected WorkerPanic, got {err:?}");
        };
        assert!(!task.is_empty(), "threads={threads}: the panicked task must be named");
        assert!(payload.contains("injected fault"), "threads={threads}: payload = {payload}");
        assert_eq!(report.stop, StopReason::WorkerPanicked, "threads={threads}");
        // The partial report is usable: a duplicate-free set of genuine
        // maximal bicliques, plus a best-effort checkpoint.
        let unique: HashSet<&Biclique> = report.bicliques.iter().collect();
        assert_eq!(unique.len(), report.bicliques.len(), "threads={threads}: duplicate");
        for b in &report.bicliques {
            assert!(
                mbe::verify::is_maximal_biclique(&g, &b.left, &b.right),
                "threads={threads}: non-maximal {b:?}"
            );
        }
        let ckpt = report.checkpoint.as_ref().expect("panic stop still carries a checkpoint");
        assert_eq!(ckpt.stop, StopReason::WorkerPanicked);
        assert_eq!(ckpt.emitted, report.bicliques.len() as u64);
    }
}

#[test]
fn injected_sink_error_checkpoint_resumes_exactly() {
    let g = crown(12);
    let full: HashSet<Biclique> =
        Enumeration::new(&g).collect().unwrap().bicliques.into_iter().collect();
    assert_eq!(full.len(), (1 << 12) - 2);
    for threads in [1, 2] {
        let stopped = Enumeration::new(&g)
            .threads(threads)
            .faults(FaultPlan::new().fail_at(100))
            .collect()
            .unwrap();
        assert_eq!(stopped.stop, StopReason::SinkStopped, "threads={threads}");
        // The failed emission was rejected before delivery; serially that
        // means exactly 100 delivered. Parallel workers may deliver a few
        // later-indexed emissions before observing the stop.
        assert!(stopped.bicliques.len() >= 100, "threads={threads}");
        if threads == 1 {
            assert_eq!(stopped.bicliques.len(), 100);
        }
        let ckpt = stopped.checkpoint.clone().expect("stopped run must carry a checkpoint");
        assert_eq!(ckpt.emitted, stopped.bicliques.len() as u64);

        // Resume from the checkpoint: the union is the complete run,
        // duplicate-free — the injected fault lost nothing.
        let resumed = Enumeration::new(&g).threads(threads).resume(ckpt).collect().unwrap();
        assert!(resumed.is_complete(), "threads={threads}");
        let mut union: HashSet<Biclique> = HashSet::with_capacity(full.len());
        for b in stopped.bicliques.iter().chain(resumed.bicliques.iter()) {
            assert!(union.insert(b.clone()), "threads={threads}: duplicate across segments {b:?}");
        }
        assert_eq!(union, full, "threads={threads}");
    }
}

#[test]
fn injected_panic_checkpoint_is_a_safe_subset() {
    // A post-panic checkpoint is best-effort (the panicked task is
    // excluded), but what it resumes must still be duplicate-free and
    // inside the complete set.
    let g = crown(10);
    let full: HashSet<Biclique> =
        Enumeration::new(&g).collect().unwrap().bicliques.into_iter().collect();
    let err = Enumeration::new(&g)
        .threads(2)
        .faults(FaultPlan::new().panic_at(20))
        .collect()
        .unwrap_err();
    let MbeError::WorkerPanic { report, .. } = err else {
        panic!("expected WorkerPanic, got {err:?}");
    };
    let ckpt = report.checkpoint.clone().expect("checkpoint");
    let resumed = Enumeration::new(&g).threads(2).resume(ckpt).collect().unwrap();
    assert!(resumed.is_complete());
    let mut union: HashSet<Biclique> = HashSet::new();
    for b in report.bicliques.iter().chain(resumed.bicliques.iter()) {
        assert!(union.insert(b.clone()), "duplicate across segments: {b:?}");
    }
    assert!(union.is_subset(&full), "resumed union escaped the complete set");
}
