//! Run-control acceptance tests on a planted dense graph.
//!
//! The crown graph S(n) — K(n,n) minus a perfect matching — has 2^n − 2
//! maximal bicliques (every proper non-empty U-subset pairs with the
//! complement's non-neighbors), so n = 18 yields ~262k emissions: far
//! more than any driver finishes inside a millisecond. That makes
//! deadlines and cancellation *deterministically* fire mid-run, while
//! every partial result can still be checked for maximality against the
//! graph directly.

use bigraph::BipartiteGraph;
use mbe::{Biclique, Enumeration, RunControl, StopReason};
use std::collections::HashSet;
use std::time::Duration;

/// Crown graph S(n): u_i adjacent to every v_j except j == i.
fn crown(n: u32) -> BipartiteGraph {
    let mut edges = Vec::with_capacity((n * (n - 1)) as usize);
    for u in 0..n {
        for v in 0..n {
            if u != v {
                edges.push((u, v));
            }
        }
    }
    BipartiteGraph::from_edges(n, n, &edges).unwrap()
}

fn assert_valid_partial(g: &BipartiteGraph, got: &[Biclique]) {
    let unique: HashSet<&Biclique> = got.iter().collect();
    assert_eq!(unique.len(), got.len(), "stopped run double-emitted");
    for b in got {
        assert!(
            mbe::verify::is_maximal_biclique(g, &b.left, &b.right),
            "stopped run emitted a non-maximal pair: {b:?}"
        );
    }
}

#[test]
fn serial_deadline_returns_partial_results() {
    let g = crown(18);
    let report = Enumeration::new(&g).timeout(Duration::from_millis(1)).collect().unwrap();
    assert_eq!(report.stop, StopReason::Deadline);
    assert!((report.bicliques.len() as u64) < (1 << 18) - 2, "run should not have finished");
    assert_valid_partial(&g, &report.bicliques);
}

#[test]
fn parallel_deadline_returns_partial_results() {
    let g = crown(18);
    let report =
        Enumeration::new(&g).threads(4).timeout(Duration::from_millis(1)).collect().unwrap();
    assert_eq!(report.stop, StopReason::Deadline);
    assert_valid_partial(&g, &report.bicliques);
}

#[test]
fn shared_cancel_flag_stops_serial_run() {
    let g = crown(18);
    let e = Enumeration::new(&g);
    let control = e.control_handle();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(1));
        control.cancel();
    });
    let report = e.collect().unwrap();
    canceller.join().unwrap();
    assert_eq!(report.stop, StopReason::Cancelled);
    assert_valid_partial(&g, &report.bicliques);
}

#[test]
fn shared_cancel_flag_stops_parallel_run() {
    let g = crown(18);
    let e = Enumeration::new(&g).threads(4);
    let control = e.control_handle();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(1));
        control.cancel();
    });
    let report = e.collect().unwrap();
    canceller.join().unwrap();
    assert_eq!(report.stop, StopReason::Cancelled);
    assert_valid_partial(&g, &report.bicliques);
}

#[test]
fn emit_budget_on_dense_graph_is_exact_in_parallel() {
    let g = crown(14);
    for threads in [1, 2, 4] {
        let report = Enumeration::new(&g).threads(threads).max_bicliques(1000).collect().unwrap();
        assert_eq!(report.stop, StopReason::EmitBudget, "threads={threads}");
        assert_eq!(report.bicliques.len(), 1000, "threads={threads}");
        assert_valid_partial(&g, &report.bicliques);
    }
}

#[test]
fn node_budget_stops_the_run() {
    let g = crown(14);
    let report = Enumeration::new(&g).max_nodes(100).collect().unwrap();
    assert_eq!(report.stop, StopReason::NodeBudget);
    assert_valid_partial(&g, &report.bicliques);
    // Node budgets bind at task granularity: the run stops at the first
    // task boundary at or past the budget, never runs to completion.
    assert!((report.bicliques.len() as u64) < (1 << 14) - 2);
}

#[test]
fn external_control_is_reusable_across_runs() {
    // One RunControl drives several runs; cancellation hits all of them.
    let g = crown(12);
    let control = RunControl::new();
    let a = Enumeration::new(&g).control(control.clone()).count().unwrap();
    assert!(a.is_complete());
    control.cancel();
    let b = Enumeration::new(&g).control(control.clone()).count().unwrap();
    assert_eq!(b.stop, StopReason::Cancelled);
    assert_eq!(b.count(), 0);
    let c = Enumeration::new(&g).threads(2).control(control).count().unwrap();
    assert_eq!(c.stop, StopReason::Cancelled);
    assert_eq!(c.count(), 0);
}

#[test]
fn timeout_stop_then_resume_completes_serial_and_parallel() {
    // The PR-3 acceptance criterion: a run stopped by a timeout on a
    // crown graph, resumed from its checkpoint (round-tripped through the
    // on-disk byte format), produces exactly the complete run's biclique
    // set — serially and at 2/4 threads.
    let g = crown(14);
    let full: HashSet<Biclique> =
        Enumeration::new(&g).collect().unwrap().bicliques.into_iter().collect();
    assert_eq!(full.len(), (1 << 14) - 2);
    for threads in [1, 2, 4] {
        let stopped = Enumeration::new(&g)
            .threads(threads)
            .timeout(Duration::from_millis(1))
            .collect()
            .unwrap();
        assert_eq!(stopped.stop, StopReason::Deadline, "threads={threads}");
        let ckpt = stopped.checkpoint.clone().expect("stopped run must carry a checkpoint");
        assert_eq!(ckpt.emitted, stopped.bicliques.len() as u64, "threads={threads}");

        // Serialize → deserialize, as the CLI's --checkpoint/--resume do.
        let restored = mbe::Checkpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(restored, ckpt);

        let resumed = Enumeration::new(&g).threads(threads).resume(restored).collect().unwrap();
        assert!(resumed.is_complete(), "threads={threads}");
        assert!(resumed.checkpoint.is_none(), "threads={threads}");

        let mut union: HashSet<Biclique> = HashSet::with_capacity(full.len());
        for b in stopped.bicliques.iter().chain(resumed.bicliques.iter()) {
            assert!(union.insert(b.clone()), "threads={threads}: duplicate across segments {b:?}");
        }
        assert_eq!(union, full, "threads={threads}");
    }
}

#[test]
fn chained_checkpoints_accumulate_across_segments() {
    // Stop, resume, stop again, resume again: three disjoint segments
    // whose union is the complete run, with a cumulative emitted count.
    let g = crown(12);
    let full: HashSet<Biclique> =
        Enumeration::new(&g).collect().unwrap().bicliques.into_iter().collect();
    let s1 = Enumeration::new(&g).max_bicliques(1000).collect().unwrap();
    assert_eq!(s1.stop, StopReason::EmitBudget);
    let c1 = s1.checkpoint.clone().expect("first checkpoint");
    assert_eq!(c1.emitted, 1000);

    let s2 = Enumeration::new(&g).resume(c1).max_bicliques(1500).collect().unwrap();
    assert_eq!(s2.stop, StopReason::EmitBudget);
    assert_eq!(s2.bicliques.len(), 1500);
    let c2 = s2.checkpoint.clone().expect("second checkpoint");
    assert_eq!(c2.emitted, 2500, "emitted count must accumulate across resumes");

    let s3 = Enumeration::new(&g).resume(c2).collect().unwrap();
    assert!(s3.is_complete());
    let mut union: HashSet<Biclique> = HashSet::with_capacity(full.len());
    for b in s1.bicliques.iter().chain(s2.bicliques.iter()).chain(s3.bicliques.iter()) {
        assert!(union.insert(b.clone()), "duplicate across segments: {b:?}");
    }
    assert_eq!(union, full);
}

#[test]
fn stopped_sets_are_subsets_of_the_complete_run() {
    // The PR's new invariant, asserted directly (and continuously under
    // the `debug-invariants` feature): a stopped run's emitted set is a
    // duplicate-free subset of the complete run's.
    let g = crown(12);
    let full: HashSet<Biclique> =
        Enumeration::new(&g).collect().unwrap().bicliques.into_iter().collect();
    assert_eq!(full.len(), (1 << 12) - 2);
    for threads in [1, 3] {
        let partial = Enumeration::new(&g).threads(threads).max_bicliques(500).collect().unwrap();
        assert_eq!(partial.stop, StopReason::EmitBudget);
        for b in &partial.bicliques {
            assert!(full.contains(b), "threads={threads}: {b:?} not in complete run");
        }
    }
}
