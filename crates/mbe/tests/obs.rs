//! Observability acceptance suite: event-ordering invariants of the
//! [`mbe::Observer`] hooks, per-worker metrics merge identities, and the
//! JSONL trace writer — across the serial driver and 2/4-thread
//! work-stealing runs.

use bigraph::BipartiteGraph;
use mbe::obs::{RunContext, SegmentInfo, TaskDelta, TaskInfo};
use mbe::{Enumeration, Observer, Stats, StopReason};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// Two overlapping blocks plus noise: enough structure for ~dozens of
/// bicliques and several non-trivial root tasks.
fn demo_graph() -> BipartiteGraph {
    let mut edges = Vec::new();
    for u in 0..6u32 {
        for v in 0..4u32 {
            edges.push((u, v));
        }
    }
    for u in 4..10u32 {
        for v in 3..8u32 {
            edges.push((u, v));
        }
    }
    edges.extend([(10, 8), (11, 8), (10, 9)]);
    BipartiteGraph::from_edges(12, 10, &edges).unwrap()
}

/// Crown graph S(n): u_i adjacent to every v_j except j == i; 2^n − 2
/// maximal bicliques — enough work to keep several workers busy.
fn crown(n: u32) -> BipartiteGraph {
    let mut edges = Vec::with_capacity((n * (n - 1)) as usize);
    for u in 0..n {
        for v in 0..n {
            if u != v {
                edges.push((u, v));
            }
        }
    }
    BipartiteGraph::from_edges(n, n, &edges).unwrap()
}

/// Flattened event stream for ordering assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Ev {
    RunStart,
    RunEnd,
    SegStart { workers: usize },
    SegEnd,
    TaskStart { worker: usize },
    TaskFinish { worker: usize, emitted: u64 },
    Steal,
    Idle,
    Sample,
    Stop,
    Checkpoint,
}

/// Records every hook invocation in arrival order.
#[derive(Default)]
struct Recorder {
    events: Mutex<Vec<Ev>>,
}

impl Recorder {
    fn take(self) -> Vec<Ev> {
        self.events.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
    fn push(&self, ev: Ev) {
        self.events.lock().unwrap_or_else(PoisonError::into_inner).push(ev);
    }
}

impl Observer for Recorder {
    fn on_run_start(&self, _ctx: &RunContext) {
        self.push(Ev::RunStart);
    }
    fn on_run_end(&self, _stop: StopReason, _stats: &Stats) {
        self.push(Ev::RunEnd);
    }
    fn on_segment_start(&self, seg: &SegmentInfo) {
        self.push(Ev::SegStart { workers: seg.workers });
    }
    fn on_segment_end(&self, _stop: StopReason, _stats: &Stats) {
        self.push(Ev::SegEnd);
    }
    fn on_task_start(&self, worker: usize, _task: &TaskInfo) {
        self.push(Ev::TaskStart { worker });
    }
    fn on_task_finish(&self, worker: usize, _task: &TaskInfo, _e: Duration, delta: &TaskDelta) {
        self.push(Ev::TaskFinish { worker, emitted: delta.emitted });
    }
    fn on_steal(&self, _worker: usize) {
        self.push(Ev::Steal);
    }
    fn on_idle(&self, _worker: usize) {
        self.push(Ev::Idle);
    }
    fn on_emit_sample(&self, _worker: usize, _emitted: u64) {
        self.push(Ev::Sample);
    }
    fn on_stop(&self, _reason: StopReason) {
        self.push(Ev::Stop);
    }
    fn on_checkpoint(&self, _tasks: u64, _emitted: u64) {
        self.push(Ev::Checkpoint);
    }
}

/// The ordering contract every run mode must satisfy:
/// run_start strictly first, run_end strictly last, segments bracketed
/// inside the run, and per-worker task start/finish strictly alternating.
fn assert_well_ordered(events: &[Ev], workers_hint: usize) {
    assert!(events.len() >= 4, "expected a non-trivial stream, got {events:?}");
    assert_eq!(events.first(), Some(&Ev::RunStart), "run_start must be first");
    assert_eq!(events.last(), Some(&Ev::RunEnd), "run_end must be last");
    assert_eq!(events.iter().filter(|e| **e == Ev::RunStart).count(), 1);
    assert_eq!(events.iter().filter(|e| **e == Ev::RunEnd).count(), 1);

    let seg_start = events
        .iter()
        .position(|e| matches!(e, Ev::SegStart { .. }))
        .expect("a segment_start event");
    let seg_end = events.iter().rposition(|e| *e == Ev::SegEnd).expect("a segment_end event");
    assert!(seg_start < seg_end, "segment_start must precede segment_end");
    if let Ev::SegStart { workers } = events[seg_start] {
        assert_eq!(workers, workers_hint, "segment must report the resolved worker count");
    }

    // Per worker, starts and finishes strictly alternate (one task in
    // flight at a time) and every start is eventually finished.
    let mut open = [false; 64];
    for ev in events {
        match *ev {
            Ev::TaskStart { worker } => {
                assert!(!open[worker], "worker {worker} started a task while one is open");
                open[worker] = true;
            }
            Ev::TaskFinish { worker, .. } => {
                assert!(open[worker], "worker {worker} finished a task it never started");
                open[worker] = false;
            }
            _ => {}
        }
    }
    assert!(open.iter().all(|o| !o), "every started task must finish on a completed run");
}

#[test]
fn serial_event_stream_is_well_ordered() {
    let g = demo_graph();
    let rec = Recorder::default();
    let report = Enumeration::new(&g).observer(&rec).collect().unwrap();
    assert!(report.is_complete());
    let events = rec.take();
    assert_well_ordered(&events, 1);
    // The serial driver never steals or idles.
    assert!(!events.contains(&Ev::Steal));
    assert!(!events.contains(&Ev::Idle));
    // Per-task emission deltas add up to the run total.
    let sum: u64 = events
        .iter()
        .filter_map(|e| match e {
            Ev::TaskFinish { emitted, .. } => Some(*emitted),
            _ => None,
        })
        .sum();
    assert_eq!(sum, report.stats.emitted, "task deltas must sum to stats.emitted");
}

#[test]
fn parallel_event_stream_is_well_ordered() {
    let g = crown(10);
    for threads in [2usize, 4] {
        let rec = Recorder::default();
        let report = Enumeration::new(&g).threads(threads).observer(&rec).collect().unwrap();
        assert!(report.is_complete(), "threads={threads}");
        let events = rec.take();
        assert_well_ordered(&events, threads);
        let sum: u64 = events
            .iter()
            .filter_map(|e| match e {
                Ev::TaskFinish { emitted, .. } => Some(*emitted),
                _ => None,
            })
            .sum();
        assert_eq!(sum, report.stats.emitted, "threads={threads}");
    }
}

#[test]
fn per_worker_metrics_merge_to_run_totals() {
    let g = crown(10);
    for threads in [1usize, 2, 4] {
        let report = Enumeration::new(&g).threads(threads).collect().unwrap();
        let m = &report.metrics;
        assert!(!m.workers.is_empty(), "threads={threads}: metrics must be populated");
        assert!(m.workers.len() <= threads.max(1), "threads={threads}");
        assert_eq!(m.total_emitted(), report.stats.emitted, "threads={threads}");
        assert_eq!(m.total_tasks(), report.stats.tasks, "threads={threads}");
        // Every task records a latency observation, so the merged
        // histogram holds exactly one count per task.
        assert_eq!(m.task_latency_us().count(), report.stats.tasks, "threads={threads}");
        // Worker ids are distinct and dense-ish.
        let mut ids: Vec<usize> = m.workers.iter().map(|w| w.worker).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), m.workers.len(), "threads={threads}: duplicate worker ids");
    }
}

#[test]
fn observer_runs_do_not_change_results() {
    let g = demo_graph();
    let plain = Enumeration::new(&g).collect().unwrap();
    let rec = Recorder::default();
    let observed = Enumeration::new(&g).observer(&rec).collect().unwrap();
    assert_eq!(plain.bicliques, observed.bicliques);
    assert_eq!(plain.stats.emitted, observed.stats.emitted);
    assert_eq!(plain.stats.nodes, observed.stats.nodes);
}

/// A fresh path under the system temp dir, unique per test name (tests
/// in one binary share a process id).
fn temp_trace(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("mbe-obs-{tag}-{}.jsonl", std::process::id()))
}

/// Minimal JSONL shape check shared by the trace tests: every line is a
/// one-level object, `t_us` is non-decreasing, `run_start` is first and
/// `run_end` (carrying `stop`) is last.
fn assert_trace_shape(content: &str, want_stop: &str) {
    let lines: Vec<&str> = content.lines().collect();
    assert!(lines.len() >= 2, "trace must hold at least run_start + run_end:\n{content}");
    assert!(lines[0].contains("\"ev\":\"run_start\""), "first line: {}", lines[0]);
    let last = lines[lines.len() - 1];
    assert!(last.contains("\"ev\":\"run_end\""), "last line: {last}");
    assert!(last.contains(&format!("\"stop\":\"{want_stop}\"")), "last line: {last}");
    let mut prev = 0u64;
    let version_tag = format!("\"v\":{}", mbe::obs::TRACE_SCHEMA_VERSION);
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "not an object: {line}");
        assert!(line.contains(&version_tag), "unversioned line: {line}");
        let t: u64 = line
            .split("\"t_us\":")
            .nth(1)
            .and_then(|rest| rest.split(',').next())
            .and_then(|n| n.parse().ok())
            .unwrap_or_else(|| panic!("no t_us in {line}"));
        assert!(t >= prev, "timestamps must be non-decreasing: {line}");
        prev = t;
    }
}

#[test]
fn jsonl_trace_covers_a_parallel_run() {
    let g = crown(10);
    let path = temp_trace("par");
    let trace = mbe::JsonlTraceObserver::create(path.to_str().unwrap()).unwrap();
    let report = Enumeration::new(&g).threads(4).observer(&trace).collect().unwrap();
    assert!(report.is_complete());
    assert!(trace.take_error().is_none(), "trace writes must succeed");
    let content = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_trace_shape(&content, "completed");
    // Task events made it through: one start and one finish per task.
    let starts = content.matches("\"ev\":\"task_start\"").count();
    let finishes = content.matches("\"ev\":\"task_finish\"").count();
    assert_eq!(starts as u64, report.stats.tasks);
    assert_eq!(finishes as u64, report.stats.tasks);
}

#[cfg(feature = "fault-injection")]
mod faults {
    use super::*;
    use mbe::faults::FaultPlan;
    use mbe::MbeError;

    /// The flush-before-fail contract: an injected worker panic must
    /// still produce a complete, well-terminated trace file whose final
    /// `run_end` records the panic stop reason.
    #[test]
    fn worker_panic_still_flushes_the_trace() {
        let g = crown(12);
        let path = temp_trace("panic");
        let trace = mbe::JsonlTraceObserver::create(path.to_str().unwrap()).unwrap();
        let err = Enumeration::new(&g)
            .threads(4)
            .faults(FaultPlan::new().panic_at(50))
            .observer(&trace)
            .collect()
            .unwrap_err();
        assert!(matches!(err, MbeError::WorkerPanic { .. }), "got {err:?}");
        assert!(trace.take_error().is_none());
        let content = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_trace_shape(&content, "worker-panic");
    }
}
