//! The correctness gate: every engine, every configuration, every
//! ordering must produce exactly the brute-force maximal biclique set on
//! randomized graphs.

use bigraph::order::VertexOrder;
use bigraph::BipartiteGraph;
use mbe::verify::{assert_matches_brute_force, brute_force};
use mbe::{Algorithm, Enumeration, MbeOptions, MbetConfig};
use proptest::prelude::*;

fn random_graph() -> impl Strategy<Value = BipartiteGraph> {
    (1u32..10, 1u32..8).prop_flat_map(|(nu, nv)| {
        proptest::collection::vec((0..nu, 0..nv), 0..60)
            .prop_map(move |edges| BipartiteGraph::from_edges(nu, nv, &edges).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_algorithm_matches_brute_force(g in random_graph()) {
        for alg in Algorithm::all() {
            let report = Enumeration::new(&g).algorithm(alg).collect().unwrap();
            assert_matches_brute_force(&g, &report.bicliques);
            prop_assert!(report.is_complete());
            prop_assert_eq!(report.count() as usize, report.bicliques.len());
        }
    }

    #[test]
    fn mbet_matches_under_every_toggle_combination(g in random_graph()) {
        let want = brute_force(&g);
        for mask in 0u8..8 {
            let cfg = MbetConfig {
                batching: mask & 1 != 0,
                trie_maximality: mask & 2 != 0,
                trie_absorption: mask & 4 != 0,
            };
            let mut got =
                Enumeration::new(&g).algorithm(Algorithm::Mbet).mbet(cfg).collect().unwrap().bicliques;
            got.sort();
            prop_assert_eq!(&got, &want, "cfg {:?}", cfg);
        }
    }

    #[test]
    fn ordering_does_not_change_the_result(g in random_graph(), seed in 0u64..1000) {
        let want = brute_force(&g);
        for order in [
            VertexOrder::Natural,
            VertexOrder::AscendingDegree,
            VertexOrder::DescendingDegree,
            VertexOrder::Unilateral,
            VertexOrder::Random(seed),
        ] {
            for alg in [Algorithm::Mbea, Algorithm::Mbet] {
                let mut got =
                    Enumeration::new(&g).algorithm(alg).order(order).collect().unwrap().bicliques;
                got.sort();
                prop_assert_eq!(&got, &want, "{:?} {:?}", alg, order);
            }
        }
    }

    #[test]
    fn parallel_matches_serial(g in random_graph(), threads in 1usize..5) {
        let want = brute_force(&g);
        for alg in [Algorithm::Imbea, Algorithm::Mbet] {
            let report =
                Enumeration::new(&g).algorithm(alg).threads(threads).collect().unwrap();
            prop_assert!(report.is_complete());
            let mut got = report.bicliques;
            got.sort();
            prop_assert_eq!(&got, &want, "{:?}", alg);
        }
    }

    #[test]
    fn forced_task_splitting_matches(g in random_graph()) {
        let want = brute_force(&g);
        let mut opts = MbeOptions::new(Algorithm::Mbet).threads(2);
        opts.split_height = 0;
        opts.split_size = 0;
        let mut got = Enumeration::new(&g).options(opts).collect().unwrap().bicliques;
        got.sort();
        prop_assert_eq!(&got, &want);
    }

    #[test]
    fn no_duplicates_ever_emitted(g in random_graph()) {
        // The TrieSink counts R-set collisions; a correct engine never
        // produces one because R determines L (= C(R)).
        for alg in Algorithm::all() {
            let mut sink = mbe::TrieSink::unbounded();
            let report = Enumeration::new(&g).algorithm(alg).run(&mut sink).unwrap();
            prop_assert!(report.is_complete());
            prop_assert_eq!(sink.duplicates(), 0, "{:?}", alg);
        }
    }

    #[test]
    fn emitted_bicliques_are_maximal(g in random_graph()) {
        let got = Enumeration::new(&g).collect().unwrap().bicliques;
        for b in &got {
            prop_assert!(mbe::verify::is_maximal_biclique(&g, &b.left, &b.right));
        }
    }
}

/// Deterministic regression corpus: shapes that historically catch MBE
/// bugs (equivalent candidates, absorption chains, crowns, multi-block).
#[test]
fn regression_corpus() {
    type Case = (u32, u32, Vec<(u32, u32)>);
    let corpus: Vec<Case> = vec![
        // Crown S(4): u_i adjacent to every v_j except j == i.
        (4, 4, {
            let mut e = Vec::new();
            for u in 0..4u32 {
                for v in 0..4u32 {
                    if u != v {
                        e.push((u, v));
                    }
                }
            }
            e
        }),
        // Two overlapping complete blocks sharing one U vertex.
        (5, 4, {
            let mut e = Vec::new();
            for u in 0..3u32 {
                for v in 0..2u32 {
                    e.push((u, v));
                }
            }
            for u in 2..5u32 {
                for v in 2..4u32 {
                    e.push((u, v));
                }
            }
            e
        }),
        // Chain of pairwise-overlapping edges.
        (6, 5, (0..5u32).flat_map(|i| [(i, i), (i + 1, i)]).collect()),
        // Heavy equivalence: three classes of duplicated neighborhoods.
        (4, 9, {
            let mut e = Vec::new();
            for v in 0..3u32 {
                e.push((0, v));
                e.push((1, v));
            }
            for v in 3..6u32 {
                e.push((1, v));
                e.push((2, v));
            }
            for v in 6..9u32 {
                e.push((0, v));
                e.push((3, v));
            }
            e
        }),
        // Nested neighborhoods (absorption ladder).
        (
            4,
            4,
            vec![(0, 0), (0, 1), (0, 2), (0, 3), (1, 1), (1, 2), (1, 3), (2, 2), (2, 3), (3, 3)],
        ),
    ];
    for (nu, nv, edges) in corpus {
        let g = BipartiteGraph::from_edges(nu, nv, &edges).unwrap();
        for alg in Algorithm::all() {
            let got = Enumeration::new(&g).algorithm(alg).collect().unwrap().bicliques;
            assert_matches_brute_force(&g, &got);
        }
    }
}
