//! Differential tests at scales beyond brute force.
//!
//! Brute force caps the smaller side at ~20 vertices; these tests instead
//! pit the engines against *each other* on structured inputs two orders
//! of magnitude larger, where bookkeeping bugs (arena reuse, trie
//! clearing, scratch pooling, fast-path boundaries) actually surface.
//! The run-control proptests at the bottom are the budget/cancellation
//! contract: stopped runs stop for the stated reason, emit exactly what
//! the budget allows, and never deadlock or double-emit — serial or
//! parallel.

use bigraph::BipartiteGraph;
use mbe::{Algorithm, Biclique, Enumeration, MbeOptions, MbetConfig, Stats, StopReason};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A structured random graph: power-law background plus planted blocks,
/// the shape real MBE inputs have.
fn structured(seed: u64, nu: u32, nv: u32, edges: usize) -> BipartiteGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut all: Vec<(u32, u32)> = Vec::new();
    // Skewed background: quadratic bias toward low ids.
    for _ in 0..edges {
        let u = (rng.gen::<f64>().powi(2) * nu as f64) as u32 % nu;
        let v = (rng.gen::<f64>().powi(2) * nv as f64) as u32 % nv;
        all.push((u, v));
    }
    // A few complete blocks with shared vertices.
    for b in 0..5u32 {
        let us: Vec<u32> = (0..4).map(|i| (b * 3 + i * 7) % nu).collect();
        let vs: Vec<u32> = (0..5).map(|i| (b * 5 + i * 11) % nv).collect();
        for &u in &us {
            for &v in &vs {
                all.push((u, v));
            }
        }
    }
    BipartiteGraph::from_edges(nu, nv, &all).unwrap()
}

fn collect(g: &BipartiteGraph, opts: MbeOptions) -> Vec<Biclique> {
    Enumeration::new(g).options(opts).collect().unwrap().bicliques
}

fn count(g: &BipartiteGraph, opts: MbeOptions) -> (u64, Stats) {
    let report = Enumeration::new(g).options(opts).count().unwrap();
    (report.count(), report.stats)
}

#[test]
fn engines_agree_on_structured_graphs() {
    for seed in 0..6 {
        let g = structured(seed, 300, 200, 1500);
        let mut reference = collect(&g, MbeOptions::new(Algorithm::Mbea));
        reference.sort();
        assert!(!reference.is_empty());
        for alg in [Algorithm::MineLmbc, Algorithm::Imbea, Algorithm::Mbet] {
            let mut got = collect(&g, MbeOptions::new(alg));
            got.sort();
            assert_eq!(got, reference, "{alg:?} seed={seed}");
        }
    }
}

#[test]
fn mbet_toggles_agree_at_scale() {
    let g = structured(99, 400, 250, 2500);
    let (want, _) = count(&g, MbeOptions::new(Algorithm::Mbea));
    for mask in 0u8..8 {
        let cfg = MbetConfig {
            batching: mask & 1 != 0,
            trie_maximality: mask & 2 != 0,
            trie_absorption: mask & 4 != 0,
        };
        let (got, _) = count(&g, MbeOptions::new(Algorithm::Mbet).mbet(cfg));
        assert_eq!(got, want, "{cfg:?}");
    }
}

#[test]
fn parallel_and_split_agree_at_scale() {
    let g = structured(7, 350, 220, 2000);
    let (want, _) = count(&g, MbeOptions::new(Algorithm::Mbet));
    for threads in [1, 2, 4] {
        let (got, _) = count(&g, MbeOptions::new(Algorithm::Mbet).threads(threads));
        assert_eq!(got, want, "threads={threads}");
    }
    // Aggressive splitting.
    let mut opts = MbeOptions::new(Algorithm::Mbet).threads(3);
    opts.split_height = 1;
    opts.split_size = 4;
    let (got, stats) = count(&g, opts);
    assert_eq!(got, want);
    assert!(stats.tasks > g.num_v() as u64 / 2, "splitting must create extra tasks");
}

#[test]
fn parallel_stop_terminates_promptly() {
    let g = structured(13, 400, 300, 3000);
    let found = std::sync::atomic::AtomicU64::new(0);
    let (_, report) = Enumeration::new(&g)
        .algorithm(Algorithm::Mbet)
        .threads(4)
        .run_per_worker(|_| {
            mbe::FnSink(|_: &[u32], _: &[u32]| {
                if found.fetch_add(1, std::sync::atomic::Ordering::Relaxed) < 10 {
                    mbe::sink::CONTINUE
                } else {
                    mbe::sink::STOP
                }
            })
        })
        .unwrap();
    assert_eq!(report.stop, StopReason::SinkStopped);
    let n = found.load(std::sync::atomic::Ordering::Relaxed);
    // Each worker may overshoot by its in-flight node, no more.
    assert!(n >= 10, "found {n}");
    assert!(n < 10_000, "stop was ignored: {n}");
}

#[test]
fn filtered_matches_post_filter_at_scale() {
    let g = structured(21, 300, 200, 1800);
    let all = collect(&g, MbeOptions::default());
    // Work reference from the same (MBEA-style, unbatched) engine family
    // the filtered search uses, in the same natural order: the thresholds
    // may only ever *remove* enumeration nodes from that tree.
    let unfiltered = MbeOptions::new(Algorithm::Mbea).order(bigraph::order::VertexOrder::Natural);
    let full_stats = Enumeration::new(&g).options(unfiltered).collect().unwrap().stats;
    for (a, b) in [(2, 2), (3, 4), (5, 5)] {
        let thr = mbe::SizeThresholds::new(a, b);
        let report = Enumeration::new(&g).thresholds(thr).collect().unwrap();
        let mut got = report.bicliques;
        got.sort();
        let mut want: Vec<_> =
            all.iter().filter(|x| x.left.len() >= a && x.right.len() >= b).cloned().collect();
        want.sort();
        assert_eq!(got, want, "thr=({a},{b})");
        // Thresholded search must do less work than the full run.
        assert!(
            report.stats.nodes <= full_stats.nodes,
            "thr=({a},{b}): filtered expanded {} nodes, full run {}",
            report.stats.nodes,
            full_stats.nodes
        );
    }
}

#[test]
fn top_k_matches_full_sort_at_scale() {
    let g = structured(33, 300, 200, 1800);
    let all = collect(&g, MbeOptions::default());
    let mut scores: Vec<usize> = all.iter().map(|b| b.edges()).collect();
    scores.sort_unstable_by(|a, b| b.cmp(a));
    for k in [1, 7, 50] {
        let (top, stats) = mbe::top_k_by_edges(&g, k);
        let got: Vec<usize> = top.iter().map(|b| b.edges()).collect();
        let want: Vec<usize> = scores.iter().copied().take(k).collect();
        assert_eq!(got, want, "k={k}");
        assert!(stats.bound_pruned > 0 || k >= all.len());
    }
}

#[test]
fn counters_close_at_scale() {
    let g = structured(44, 350, 250, 2200);
    for alg in Algorithm::all() {
        let report = Enumeration::new(&g).algorithm(alg).count().unwrap();
        assert!(report.is_complete());
        assert_eq!(report.stats.nodes, report.stats.emitted + report.stats.nonmaximal, "{alg:?}");
    }
}

#[test]
fn kernels_agree_at_scale() {
    // The kernel is an execution hint: pure-sorted, pure-bitmap, and the
    // adaptive default must produce identical emissions (order included,
    // serially) and identical search-tree counters, at a scale where the
    // packed rows actually engage.
    let g = structured(55, 350, 240, 2200);
    let want = Enumeration::new(&g)
        .options(MbeOptions::default().kernel(mbe::Kernel::SortedOnly))
        .collect()
        .unwrap();
    assert!(want.bicliques.len() > 100);
    for kernel in [mbe::Kernel::Adaptive, mbe::Kernel::BitmapOnly] {
        let got =
            Enumeration::new(&g).options(MbeOptions::default().kernel(kernel)).collect().unwrap();
        assert_eq!(got.bicliques, want.bicliques, "{kernel:?}");
        assert_eq!(got.stats.nodes, want.stats.nodes, "{kernel:?}");
        assert_eq!(got.stats.emitted, want.stats.emitted, "{kernel:?}");
        assert_eq!(got.stats.nonmaximal, want.stats.nonmaximal, "{kernel:?}");
        assert_eq!(got.stats.batched, want.stats.batched, "{kernel:?}");
    }
    let mut reference = want.bicliques;
    reference.sort();
    for threads in [2, 4] {
        for kernel in [mbe::Kernel::SortedOnly, mbe::Kernel::BitmapOnly] {
            let mut got = collect(&g, MbeOptions::default().threads(threads).kernel(kernel));
            got.sort();
            assert_eq!(got, reference, "threads={threads} {kernel:?}");
        }
    }
}

#[test]
fn resume_crosses_relabeled_roots_under_kernel_change() {
    // Stopping mid-root captures `Node` frontier entries whose sets were
    // translated back out of that root's compacted id space; resuming
    // re-localizes them from scratch. The kernel is not pinned by the
    // checkpoint (it never affects the emitted set), so the two segments
    // may even run under different kernels.
    let g = structured(77, 300, 200, 1800);
    let full: std::collections::HashSet<Biclique> =
        collect(&g, MbeOptions::default()).into_iter().collect();
    let stopped = Enumeration::new(&g)
        .options(MbeOptions::default().kernel(mbe::Kernel::SortedOnly))
        .max_bicliques(3)
        .collect()
        .unwrap();
    let ckpt = stopped.checkpoint.clone().expect("budget-stopped run must checkpoint");
    // The stop landed inside a root subtree: the frontier must carry
    // interior nodes (not just untouched roots), every id translated back
    // into the graph-wide space.
    let mut saw_node = false;
    for task in &ckpt.frontier {
        if let mbe::ResumeTask::Node { l, r_parent, v, p, q } = task {
            saw_node = true;
            assert!(setops::is_strictly_increasing(l));
            for &u in l {
                assert!(u < g.num_u(), "left id {u} out of range");
            }
            for &w in r_parent.iter().chain(p).chain(q).chain(std::iter::once(v)) {
                assert!(w < g.num_v(), "right id {w} out of range");
            }
        }
    }
    assert!(saw_node, "expected the stop to land inside a root subtree");
    for kernel in [mbe::Kernel::SortedOnly, mbe::Kernel::BitmapOnly, mbe::Kernel::Adaptive] {
        for threads in [1, 3] {
            let resumed = Enumeration::new(&g)
                .options(MbeOptions::default().threads(threads).kernel(kernel))
                .resume(ckpt.clone())
                .collect()
                .unwrap();
            assert!(resumed.is_complete(), "{kernel:?} threads={threads}");
            let mut union: std::collections::HashSet<Biclique> =
                std::collections::HashSet::with_capacity(full.len());
            for b in stopped.bicliques.iter().chain(resumed.bicliques.iter()) {
                assert!(union.insert(b.clone()), "duplicate across segments: {b:?} ({kernel:?})");
            }
            assert_eq!(union, full, "{kernel:?} threads={threads}");
        }
    }
}

// ---------------------------------------------------------------------------
// Run-control contract, property-tested.

fn random_graph() -> impl Strategy<Value = BipartiteGraph> {
    (1u32..12, 1u32..10).prop_flat_map(|(nu, nv)| {
        proptest::collection::vec((0..nu, 0..nv), 0..80)
            .prop_map(move |edges| BipartiteGraph::from_edges(nu, nv, &edges).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any graph, any budget `k`: if the graph has more than `k` maximal
    /// bicliques the run stops with `EmitBudget` after exactly `k`
    /// duplicate-free emissions, each maximal; otherwise it completes
    /// with the full set.
    #[test]
    fn emit_budget_is_exact_and_duplicate_free(g in random_graph(), k in 1u64..12) {
        let total = Enumeration::new(&g).count().unwrap().count();
        let report = Enumeration::new(&g).max_bicliques(k).collect().unwrap();
        if total > k {
            prop_assert_eq!(report.stop, StopReason::EmitBudget);
            prop_assert_eq!(report.bicliques.len() as u64, k);
        } else {
            prop_assert_eq!(report.stop, StopReason::Completed);
            prop_assert_eq!(report.bicliques.len() as u64, total);
        }
        let unique: std::collections::HashSet<&Biclique> = report.bicliques.iter().collect();
        prop_assert_eq!(unique.len(), report.bicliques.len(), "duplicate emission");
        for b in &report.bicliques {
            prop_assert!(mbe::verify::is_maximal_biclique(&g, &b.left, &b.right));
        }
    }

    /// The same budget contract holds across worker counts: parallel
    /// budgeted runs stop for the same reason, emit exactly the budget,
    /// never double-emit, and always terminate (the test completing *is*
    /// the no-deadlock assertion).
    #[test]
    fn budgets_and_cancellation_are_safe_in_parallel(
        g in random_graph(),
        k in 1u64..12,
        threads in 2usize..5,
    ) {
        let total = Enumeration::new(&g).count().unwrap().count();
        let report =
            Enumeration::new(&g).threads(threads).max_bicliques(k).collect().unwrap();
        if total > k {
            prop_assert_eq!(report.stop, StopReason::EmitBudget, "threads={}", threads);
        } else {
            prop_assert_eq!(report.stop, StopReason::Completed, "threads={}", threads);
        }
        prop_assert_eq!(report.bicliques.len() as u64, total.min(k));
        let unique: std::collections::HashSet<&Biclique> = report.bicliques.iter().collect();
        prop_assert_eq!(unique.len(), report.bicliques.len(), "duplicate emission");

        // A run cancelled before it starts drains cleanly and emits
        // nothing, at every worker count.
        let control = mbe::RunControl::new();
        control.cancel();
        let cancelled = Enumeration::new(&g)
            .threads(threads)
            .control(control)
            .collect()
            .unwrap();
        prop_assert_eq!(cancelled.stop, StopReason::Cancelled);
        prop_assert!(cancelled.bicliques.is_empty());
    }

    /// Kernel differential on arbitrary graphs: forcing the pure-bitmap
    /// and pure-sorted kernels through the public API must be observably
    /// identical — same bicliques in the same serial order, same search
    /// counters — and parallel runs agree as sets at 2–4 workers.
    #[test]
    fn bitmap_and_sorted_kernels_are_observably_identical(
        g in random_graph(),
        threads in 2usize..5,
    ) {
        let sorted = Enumeration::new(&g)
            .options(MbeOptions::default().kernel(mbe::Kernel::SortedOnly))
            .collect()
            .unwrap();
        let bits = Enumeration::new(&g)
            .options(MbeOptions::default().kernel(mbe::Kernel::BitmapOnly))
            .collect()
            .unwrap();
        prop_assert_eq!(&sorted.bicliques, &bits.bicliques);
        prop_assert_eq!(sorted.stats.nodes, bits.stats.nodes);
        prop_assert_eq!(sorted.stats.emitted, bits.stats.emitted);
        prop_assert_eq!(sorted.stats.nonmaximal, bits.stats.nonmaximal);
        prop_assert_eq!(sorted.stats.batched, bits.stats.batched);

        let mut want = sorted.bicliques;
        want.sort();
        for kernel in [mbe::Kernel::SortedOnly, mbe::Kernel::BitmapOnly] {
            let mut got = collect(&g, MbeOptions::default().threads(threads).kernel(kernel));
            got.sort();
            prop_assert_eq!(&got, &want, "threads={} {:?}", threads, kernel);
        }
    }

    /// The checkpoint/resume contract on random graphs: stop a run with a
    /// budget, round-trip the checkpoint through the on-disk byte format,
    /// resume it at an arbitrary worker count, and the two segments form a
    /// duplicate-free partition of the uninterrupted run's biclique set.
    #[test]
    fn checkpoint_roundtrip_resume_equals_complete_run(
        g in random_graph(),
        k in 1u64..8,
        threads in 1usize..5,
    ) {
        let full: std::collections::HashSet<Biclique> =
            Enumeration::new(&g).collect().unwrap().bicliques.into_iter().collect();
        let stopped = Enumeration::new(&g).threads(threads).max_bicliques(k).collect().unwrap();
        match stopped.checkpoint.clone() {
            None => prop_assert!(stopped.is_complete(), "only complete runs lack a checkpoint"),
            Some(ckpt) => {
                prop_assert_eq!(ckpt.emitted, stopped.bicliques.len() as u64);
                let restored = mbe::Checkpoint::from_bytes(&ckpt.to_bytes()).unwrap();
                prop_assert_eq!(&restored, &ckpt);
                let resumed =
                    Enumeration::new(&g).threads(threads).resume(restored).collect().unwrap();
                prop_assert!(resumed.is_complete(), "threads={}", threads);
                let mut union: std::collections::HashSet<Biclique> =
                    std::collections::HashSet::with_capacity(full.len());
                for b in stopped.bicliques.iter().chain(resumed.bicliques.iter()) {
                    prop_assert!(union.insert(b.clone()), "duplicate across segments: {:?}", b);
                }
                prop_assert_eq!(union, full, "threads={}", threads);
            }
        }
    }

    /// Corrupted checkpoint bytes — truncations, single bit flips, and a
    /// fingerprint for the wrong graph — are rejected with typed errors,
    /// never a panic or a silently wrong resume.
    #[test]
    fn corrupted_checkpoint_bytes_are_rejected(
        g in random_graph(),
        cut_seed in 0usize..4096,
        flip_seed in 0usize..4096,
    ) {
        let stopped = Enumeration::new(&g).max_bicliques(1).collect().unwrap();
        if let Some(ckpt) = stopped.checkpoint.clone() {
            let bytes = ckpt.to_bytes();

            // Any strict prefix fails to decode.
            let cut_at = cut_seed % bytes.len();
            prop_assert!(mbe::Checkpoint::from_bytes(&bytes[..cut_at]).is_err());

            // Any single flipped bit is caught (the trailing checksum
            // covers every preceding byte).
            let bit = flip_seed % (bytes.len() * 8);
            let mut corrupt = bytes.clone();
            corrupt[bit / 8] ^= 1 << (bit % 8);
            prop_assert!(
                mbe::Checkpoint::from_bytes(&corrupt).is_err(),
                "flipped bit {} decoded successfully",
                bit
            );

            // A structurally valid checkpoint for a *different* graph is
            // rejected at resume time by the fingerprint.
            let mut other_edges: Vec<(u32, u32)> = Vec::new();
            for u in 0..g.num_u() {
                for v in g.nbr_u(u) {
                    other_edges.push((u, *v));
                }
            }
            other_edges.push((g.num_u(), g.num_v()));
            let other =
                BipartiteGraph::from_edges(g.num_u() + 1, g.num_v() + 1, &other_edges).unwrap();
            let err = Enumeration::new(&other).resume(ckpt).collect().unwrap_err();
            prop_assert!(
                matches!(err, mbe::MbeError::Checkpoint(mbe::CheckpointError::GraphMismatch { .. })),
                "expected GraphMismatch, got {:?}",
                err
            );
        }
    }

    /// Cancellation raised from another thread mid-run: the run always
    /// returns (no deadlock), and whatever it emitted is a duplicate-free
    /// set of genuine maximal bicliques.
    #[test]
    fn midrun_cancellation_never_deadlocks_or_double_emits(
        g in random_graph(),
        threads in 1usize..5,
        delay_us in 0u64..200,
    ) {
        let e = Enumeration::new(&g).threads(threads);
        let control = e.control_handle();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_micros(delay_us));
            control.cancel();
        });
        let report = e.collect().unwrap();
        canceller.join().unwrap();
        // Either it finished before the flag landed or it was cancelled.
        prop_assert!(
            report.stop == StopReason::Completed || report.stop == StopReason::Cancelled,
            "unexpected stop: {:?}",
            report.stop
        );
        let unique: std::collections::HashSet<&Biclique> = report.bicliques.iter().collect();
        prop_assert_eq!(unique.len(), report.bicliques.len(), "duplicate emission");
        for b in &report.bicliques {
            prop_assert!(mbe::verify::is_maximal_biclique(&g, &b.left, &b.right));
        }
    }
}
