//! Differential tests at scales beyond brute force.
//!
//! Brute force caps the smaller side at ~20 vertices; these tests instead
//! pit the engines against *each other* on structured inputs two orders
//! of magnitude larger, where bookkeeping bugs (arena reuse, trie
//! clearing, scratch pooling, fast-path boundaries) actually surface.

use bigraph::BipartiteGraph;
use mbe::{collect_bicliques, count_bicliques, Algorithm, MbeOptions, MbetConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A structured random graph: power-law background plus planted blocks,
/// the shape real MBE inputs have.
fn structured(seed: u64, nu: u32, nv: u32, edges: usize) -> BipartiteGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut all: Vec<(u32, u32)> = Vec::new();
    // Skewed background: quadratic bias toward low ids.
    for _ in 0..edges {
        let u = (rng.gen::<f64>().powi(2) * nu as f64) as u32 % nu;
        let v = (rng.gen::<f64>().powi(2) * nv as f64) as u32 % nv;
        all.push((u, v));
    }
    // A few complete blocks with shared vertices.
    for b in 0..5u32 {
        let us: Vec<u32> = (0..4).map(|i| (b * 3 + i * 7) % nu).collect();
        let vs: Vec<u32> = (0..5).map(|i| (b * 5 + i * 11) % nv).collect();
        for &u in &us {
            for &v in &vs {
                all.push((u, v));
            }
        }
    }
    BipartiteGraph::from_edges(nu, nv, &all).unwrap()
}

#[test]
fn engines_agree_on_structured_graphs() {
    for seed in 0..6 {
        let g = structured(seed, 300, 200, 1500);
        let (reference, _) = collect_bicliques(&g, &MbeOptions::new(Algorithm::Mbea)).unwrap();
        let mut reference = reference;
        reference.sort();
        assert!(!reference.is_empty());
        for alg in [Algorithm::MineLmbc, Algorithm::Imbea, Algorithm::Mbet] {
            let (mut got, _) = collect_bicliques(&g, &MbeOptions::new(alg)).unwrap();
            got.sort();
            assert_eq!(got, reference, "{alg:?} seed={seed}");
        }
    }
}

#[test]
fn mbet_toggles_agree_at_scale() {
    let g = structured(99, 400, 250, 2500);
    let (want, _) = count_bicliques(&g, &MbeOptions::new(Algorithm::Mbea));
    for mask in 0u8..8 {
        let cfg = MbetConfig {
            batching: mask & 1 != 0,
            trie_maximality: mask & 2 != 0,
            trie_absorption: mask & 4 != 0,
        };
        let (got, _) = count_bicliques(&g, &MbeOptions::new(Algorithm::Mbet).mbet(cfg));
        assert_eq!(got, want, "{cfg:?}");
    }
}

#[test]
fn parallel_and_split_agree_at_scale() {
    let g = structured(7, 350, 220, 2000);
    let (want, _) = count_bicliques(&g, &MbeOptions::new(Algorithm::Mbet));
    for threads in [1, 2, 4] {
        let opts = MbeOptions::new(Algorithm::Mbet).threads(threads);
        let (got, _) = mbe::parallel::par_count_bicliques(&g, &opts);
        assert_eq!(got, want, "threads={threads}");
    }
    // Aggressive splitting.
    let mut opts = MbeOptions::new(Algorithm::Mbet).threads(3);
    opts.split_height = 1;
    opts.split_size = 4;
    let (got, stats) = mbe::parallel::par_count_bicliques(&g, &opts);
    assert_eq!(got, want);
    assert!(stats.tasks > g.num_v() as u64 / 2, "splitting must create extra tasks");
}

#[test]
fn parallel_stop_terminates_promptly() {
    let g = structured(13, 400, 300, 3000);
    let opts = MbeOptions::new(Algorithm::Mbet).threads(4);
    let found = std::sync::atomic::AtomicU64::new(0);
    let (_, _) = mbe::parallel::par_enumerate_with(&g, &opts, |_| {
        mbe::FnSink(|_: &[u32], _: &[u32]| {
            found.fetch_add(1, std::sync::atomic::Ordering::Relaxed) < 10
        })
    });
    let n = found.load(std::sync::atomic::Ordering::Relaxed);
    // Each worker may overshoot by its in-flight node, no more.
    assert!(n >= 10, "found {n}");
    assert!(n < 10_000, "stop was ignored: {n}");
}

#[test]
fn filtered_matches_post_filter_at_scale() {
    let g = structured(21, 300, 200, 1800);
    let (all, _) = collect_bicliques(&g, &MbeOptions::default()).unwrap();
    // Work reference from the same (MBEA-style, unbatched) engine family
    // the filtered search uses, in the same natural order: the thresholds
    // may only ever *remove* enumeration nodes from that tree.
    let unfiltered = MbeOptions::new(Algorithm::Mbea).order(bigraph::order::VertexOrder::Natural);
    let (_, full_stats) = collect_bicliques(&g, &unfiltered).unwrap();
    for (a, b) in [(2, 2), (3, 4), (5, 5)] {
        let thr = mbe::SizeThresholds::new(a, b);
        let (mut got, stats) = mbe::collect_filtered(&g, thr);
        got.sort();
        let mut want: Vec<_> =
            all.iter().filter(|x| x.left.len() >= a && x.right.len() >= b).cloned().collect();
        want.sort();
        assert_eq!(got, want, "thr=({a},{b})");
        // Thresholded search must do less work than the full run.
        assert!(
            stats.nodes <= full_stats.nodes,
            "thr=({a},{b}): filtered expanded {} nodes, full run {}",
            stats.nodes,
            full_stats.nodes
        );
    }
}

#[test]
fn top_k_matches_full_sort_at_scale() {
    let g = structured(33, 300, 200, 1800);
    let (all, _) = collect_bicliques(&g, &MbeOptions::default()).unwrap();
    let mut scores: Vec<usize> = all.iter().map(|b| b.edges()).collect();
    scores.sort_unstable_by(|a, b| b.cmp(a));
    for k in [1, 7, 50] {
        let (top, stats) = mbe::top_k_by_edges(&g, k);
        let got: Vec<usize> = top.iter().map(|b| b.edges()).collect();
        let want: Vec<usize> = scores.iter().copied().take(k).collect();
        assert_eq!(got, want, "k={k}");
        assert!(stats.bound_pruned > 0 || k >= all.len());
    }
}

#[test]
fn counters_close_at_scale() {
    let g = structured(44, 350, 250, 2200);
    for alg in Algorithm::all() {
        let (n, stats) = count_bicliques(&g, &MbeOptions::new(alg));
        assert_eq!(stats.emitted, n);
        assert_eq!(stats.nodes, stats.emitted + stats.nonmaximal, "{alg:?}");
    }
}
