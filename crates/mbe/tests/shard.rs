//! Frontier-shard split/merge contract: any partition of the root
//! frontier into k shards, resumed independently and unioned, equals the
//! complete run, duplicate-free — the invariant the coordinator's
//! scatter/gather (serve crate) distributes on. Exercised with the
//! balanced [`Checkpoint::split`] cut AND arbitrary random partitions,
//! on the serial and the threaded driver.

use bigraph::BipartiteGraph;
use mbe::checkpoint::initial_checkpoint;
use mbe::{
    Algorithm, Biclique, Checkpoint, Enumeration, MbeOptions, QueryParams, ResumeTask, StopReason,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small-but-nontrivial random bipartite graph with planted blocks.
fn graph(seed: u64, nu: u32, nv: u32, edges: usize) -> BipartiteGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut all: Vec<(u32, u32)> = Vec::new();
    for _ in 0..edges {
        all.push((rng.gen_range(0..nu), rng.gen_range(0..nv)));
    }
    // A planted 3x4 block so dense structure is always present.
    for u in 0..3.min(nu) {
        for v in 0..4.min(nv) {
            all.push((u, v));
        }
    }
    BipartiteGraph::from_edges(nu, nv, &all).unwrap()
}

fn complete_run(g: &BipartiteGraph, opts: &MbeOptions) -> Vec<Biclique> {
    let mut all = Enumeration::new(g).options(opts.clone()).collect().unwrap().bicliques;
    all.sort();
    all
}

/// Resumes every shard independently (at `threads`) and returns the
/// sorted union, asserting each shard completes and none overlaps.
fn union_of_shards(g: &BipartiteGraph, shards: &[Checkpoint], threads: usize) -> Vec<Biclique> {
    let mut union: Vec<Biclique> = Vec::new();
    for shard in shards {
        let report = mbe::service::run_shard(
            g,
            &QueryParams { threads, ..QueryParams::default() },
            shard.clone(),
            mbe::RunControl::new(),
            None,
        )
        .unwrap();
        assert_eq!(report.stop, StopReason::Completed, "shard must run to completion");
        union.extend(report.bicliques);
    }
    let before = union.len();
    union.sort();
    union.dedup();
    assert_eq!(union.len(), before, "shard outputs overlap: duplicates in the union");
    union
}

/// An arbitrary (not load-balanced) partition of the frontier into k
/// nonempty-or-empty buckets, driven by the proptest-provided seed.
fn random_partition(whole: &Checkpoint, k: usize, seed: u64) -> Vec<Checkpoint> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut buckets: Vec<Vec<ResumeTask>> = vec![Vec::new(); k];
    for task in &whole.frontier {
        buckets[rng.gen_range(0..k)].push(task.clone());
    }
    buckets
        .into_iter()
        .filter(|b| !b.is_empty())
        .map(|frontier| Checkpoint { emitted: 0, frontier, ..whole.clone() })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The balanced split: every k, serial resume.
    #[test]
    fn balanced_split_union_equals_complete_run(
        seed in 0u64..500,
        k in 1usize..8,
    ) {
        let g = graph(seed, 40, 30, 160);
        let opts = MbeOptions::new(Algorithm::Mbet);
        let reference = complete_run(&g, &opts);
        let shards = initial_checkpoint(&g, &opts).split(&g, k).unwrap();
        prop_assert_eq!(union_of_shards(&g, &shards, 1), reference);
    }

    /// Any partition at all, resumed serially and threaded.
    #[test]
    fn arbitrary_partition_union_equals_complete_run(
        seed in 0u64..500,
        part_seed in 0u64..1000,
        k in 1usize..6,
    ) {
        let g = graph(seed, 35, 25, 130);
        let opts = MbeOptions::new(Algorithm::Mbet);
        let reference = complete_run(&g, &opts);
        let whole = initial_checkpoint(&g, &opts);
        let shards = random_partition(&whole, k, part_seed);
        prop_assert_eq!(union_of_shards(&g, &shards, 1), reference.clone());
        prop_assert_eq!(union_of_shards(&g, &shards, 2), reference);
    }
}

#[test]
fn split_union_holds_for_every_algorithm() {
    let g = graph(7, 30, 30, 120);
    for alg in Algorithm::all() {
        let opts = MbeOptions::new(alg);
        let reference = complete_run(&g, &opts);
        let shards = initial_checkpoint(&g, &opts).split(&g, 3).unwrap();
        assert_eq!(union_of_shards(&g, &shards, 1), reference, "{}", alg.label());
    }
}

#[test]
fn merged_shards_resume_like_the_original() {
    let g = graph(3, 30, 20, 100);
    let opts = MbeOptions::new(Algorithm::Mbet);
    let whole = initial_checkpoint(&g, &opts);
    let shards = whole.split(&g, 4).unwrap();
    let merged = Checkpoint::merge(&shards).unwrap();
    let reference = complete_run(&g, &opts);
    assert_eq!(union_of_shards(&g, &[merged], 1), reference);
}
