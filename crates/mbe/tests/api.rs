//! Public-API surface tests: the contracts a downstream user relies on,
//! exercised through the exported entry points only.

use bigraph::BipartiteGraph;
use mbe::{Algorithm, CountSink, Enumeration, FnSink, MbeOptions, StopReason};

fn demo_graph() -> BipartiteGraph {
    // Two overlapping blocks plus noise: enough structure for ~dozens of
    // bicliques.
    let mut edges = Vec::new();
    for u in 0..6u32 {
        for v in 0..4u32 {
            edges.push((u, v));
        }
    }
    for u in 4..10u32 {
        for v in 3..8u32 {
            edges.push((u, v));
        }
    }
    edges.extend([(10, 8), (11, 8), (10, 9)]);
    BipartiteGraph::from_edges(12, 10, &edges).unwrap()
}

#[test]
fn count_equals_collect_equals_stats() {
    let g = demo_graph();
    for alg in Algorithm::all() {
        let opts = MbeOptions::new(alg);
        let collected = Enumeration::new(&g).options(opts.clone()).collect().unwrap();
        let counted = Enumeration::new(&g).options(opts).count().unwrap();
        assert_eq!(collected.bicliques.len() as u64, counted.count(), "{alg:?}");
        assert_eq!(collected.stats.emitted, counted.stats.emitted, "{alg:?}");
        assert_eq!(
            collected.stats.nodes, counted.stats.nodes,
            "stats must not depend on the sink ({alg:?})"
        );
        assert!(collected.is_complete() && counted.is_complete(), "{alg:?}");
    }
}

#[test]
fn serial_emission_order_is_deterministic() {
    let g = demo_graph();
    let a = Enumeration::new(&g).collect().unwrap();
    let b = Enumeration::new(&g).collect().unwrap();
    assert_eq!(a.bicliques, b.bicliques, "same options must give the same emission order");
}

#[test]
fn early_stop_returns_partial_prefix() {
    let g = demo_graph();
    let all = Enumeration::new(&g).collect().unwrap().bicliques;
    assert!(all.len() > 5);

    // Stop after 3: the emissions seen must be the first 3 of the full
    // deterministic order.
    let mut seen = Vec::new();
    let report = {
        let mut sink = FnSink(|l: &[u32], r: &[u32]| {
            seen.push(mbe::Biclique::new(l.to_vec(), r.to_vec()));
            if seen.len() < 3 {
                mbe::sink::CONTINUE
            } else {
                mbe::sink::STOP
            }
        });
        Enumeration::new(&g).run(&mut sink).unwrap()
    };
    assert_eq!(report.stop, StopReason::SinkStopped);
    assert_eq!(seen.len(), 3);
    assert_eq!(seen.as_slice(), &all[..3]);
    // The emitted counter excludes the emission that requested the stop.
    assert_eq!(report.stats.emitted, 2);
}

#[test]
fn emit_budget_returns_exact_prefix() {
    let g = demo_graph();
    let all = Enumeration::new(&g).collect().unwrap().bicliques;
    let report = Enumeration::new(&g).max_bicliques(4).collect().unwrap();
    assert_eq!(report.stop, StopReason::EmitBudget);
    assert_eq!(report.bicliques.as_slice(), &all[..4]);
    assert_eq!(report.count(), 4);
}

#[test]
fn stats_elapsed_is_populated() {
    let g = demo_graph();
    let mut sink = CountSink::default();
    let report = Enumeration::new(&g).run(&mut sink).unwrap();
    assert!(report.stats.elapsed.as_nanos() > 0);
    assert_eq!(report.stats.nodes, report.stats.emitted + report.stats.nonmaximal);
    assert!(report.stats.tasks > 0);
}

#[test]
fn default_options_are_mbet_ascending_serial() {
    let o = MbeOptions::default();
    assert_eq!(o.algorithm, Algorithm::Mbet);
    assert_eq!(o.order, bigraph::order::VertexOrder::AscendingDegree);
    assert_eq!(o.threads, 1, "serial by default");
    assert!(o.mbet.batching && o.mbet.trie_maximality && o.mbet.trie_absorption);
}

#[test]
fn emitted_ids_are_in_caller_space_under_reordering() {
    // With a random order applied internally, ids must still come back
    // in the caller's space: every emitted pair must be a biclique of
    // the *input* graph.
    let g = demo_graph();
    let report =
        Enumeration::new(&g).order(bigraph::order::VertexOrder::Random(99)).collect().unwrap();
    for b in &report.bicliques {
        assert!(mbe::verify::is_maximal_biclique(&g, &b.left, &b.right), "{b:?}");
    }
}

#[test]
fn sides_both_nonempty_and_sorted() {
    let g = demo_graph();
    let all = Enumeration::new(&g).collect().unwrap().bicliques;
    for b in &all {
        assert!(!b.left.is_empty() && !b.right.is_empty());
        assert!(setops::is_strictly_increasing(&b.left));
        assert!(setops::is_strictly_increasing(&b.right));
    }
}

#[test]
fn graphs_with_swapped_sides_give_mirrored_results() {
    let g = demo_graph();
    let swapped = g.swap_sides();
    let a = Enumeration::new(&g).collect().unwrap().bicliques;
    let b = Enumeration::new(&swapped).collect().unwrap().bicliques;
    let mut a_mirrored: Vec<mbe::Biclique> =
        a.iter().map(|x| mbe::Biclique { left: x.right.clone(), right: x.left.clone() }).collect();
    a_mirrored.sort();
    let mut b = b;
    b.sort();
    assert_eq!(a_mirrored, b);
}

#[test]
fn kernel_option_is_behavior_invariant() {
    // The kernel is an execution hint: forcing either pure variant must
    // reproduce the default run exactly — same bicliques, same order,
    // same counters.
    let g = demo_graph();
    let want = Enumeration::new(&g).collect().unwrap();
    for kernel in [mbe::Kernel::SortedOnly, mbe::Kernel::BitmapOnly] {
        let got =
            Enumeration::new(&g).options(MbeOptions::default().kernel(kernel)).collect().unwrap();
        assert_eq!(got.bicliques, want.bicliques, "{kernel:?}");
        assert_eq!(got.stats.emitted, want.stats.emitted, "{kernel:?}");
        assert_eq!(got.stats.nodes, want.stats.nodes, "{kernel:?}");
    }
}
