//! Public-API surface tests: the contracts a downstream user relies on,
//! exercised through the exported entry points only.

use bigraph::BipartiteGraph;
use mbe::{
    collect_bicliques, count_bicliques, enumerate, Algorithm, CountSink, FnSink, MbeOptions,
};

fn demo_graph() -> BipartiteGraph {
    // Two overlapping blocks plus noise: enough structure for ~dozens of
    // bicliques.
    let mut edges = Vec::new();
    for u in 0..6u32 {
        for v in 0..4u32 {
            edges.push((u, v));
        }
    }
    for u in 4..10u32 {
        for v in 3..8u32 {
            edges.push((u, v));
        }
    }
    edges.extend([(10, 8), (11, 8), (10, 9)]);
    BipartiteGraph::from_edges(12, 10, &edges).unwrap()
}

#[test]
fn count_equals_collect_equals_stats() {
    let g = demo_graph();
    for alg in Algorithm::all() {
        let opts = MbeOptions::new(alg);
        let (collected, s1) = collect_bicliques(&g, &opts).unwrap();
        let (counted, s2) = count_bicliques(&g, &opts);
        assert_eq!(collected.len() as u64, counted, "{alg:?}");
        assert_eq!(s1.emitted, s2.emitted, "{alg:?}");
        assert_eq!(s1.nodes, s2.nodes, "stats must not depend on the sink ({alg:?})");
    }
}

#[test]
fn serial_emission_order_is_deterministic() {
    let g = demo_graph();
    let opts = MbeOptions::default();
    let (a, _) = collect_bicliques(&g, &opts).unwrap();
    let (b, _) = collect_bicliques(&g, &opts).unwrap();
    assert_eq!(a, b, "same options must give the same emission order");
}

#[test]
fn early_stop_returns_partial_prefix() {
    let g = demo_graph();
    let opts = MbeOptions::default();
    let (all, _) = collect_bicliques(&g, &opts).unwrap();
    assert!(all.len() > 5);

    // Stop after 3: the emissions seen must be the first 3 of the full
    // deterministic order.
    let mut seen = Vec::new();
    let mut sink = FnSink(|l: &[u32], r: &[u32]| {
        seen.push(mbe::Biclique::new(l.to_vec(), r.to_vec()));
        seen.len() < 3
    });
    let stats = enumerate(&g, &opts, &mut sink);
    assert_eq!(seen.len(), 3);
    assert_eq!(seen.as_slice(), &all[..3]);
    // The emitted counter excludes the emission that requested the stop.
    assert_eq!(stats.emitted, 2);
}

#[test]
fn stats_elapsed_is_populated() {
    let g = demo_graph();
    let mut sink = CountSink::default();
    let stats = enumerate(&g, &MbeOptions::default(), &mut sink);
    assert!(stats.elapsed.as_nanos() > 0);
    assert_eq!(stats.nodes, stats.emitted + stats.nonmaximal);
    assert!(stats.tasks > 0);
}

#[test]
fn default_options_are_mbet_ascending() {
    let o = MbeOptions::default();
    assert_eq!(o.algorithm, Algorithm::Mbet);
    assert_eq!(o.order, bigraph::order::VertexOrder::AscendingDegree);
    assert!(o.mbet.batching && o.mbet.trie_maximality && o.mbet.trie_absorption);
}

#[test]
fn emitted_ids_are_in_caller_space_under_reordering() {
    // With a random order applied internally, ids must still come back
    // in the caller's space: every emitted pair must be a biclique of
    // the *input* graph.
    let g = demo_graph();
    let opts = MbeOptions::default().order(bigraph::order::VertexOrder::Random(99));
    let (all, _) = collect_bicliques(&g, &opts).unwrap();
    for b in &all {
        assert!(mbe::verify::is_maximal_biclique(&g, &b.left, &b.right), "{b:?}");
    }
}

#[test]
fn sides_both_nonempty_and_sorted() {
    let g = demo_graph();
    let (all, _) = collect_bicliques(&g, &MbeOptions::default()).unwrap();
    for b in &all {
        assert!(!b.left.is_empty() && !b.right.is_empty());
        assert!(setops::is_strictly_increasing(&b.left));
        assert!(setops::is_strictly_increasing(&b.right));
    }
}

#[test]
fn graphs_with_swapped_sides_give_mirrored_results() {
    let g = demo_graph();
    let swapped = g.swap_sides();
    let (a, _) = collect_bicliques(&g, &MbeOptions::default()).unwrap();
    let (b, _) = collect_bicliques(&swapped, &MbeOptions::default()).unwrap();
    let mut a_mirrored: Vec<mbe::Biclique> =
        a.iter().map(|x| mbe::Biclique { left: x.right.clone(), right: x.left.clone() }).collect();
    a_mirrored.sort();
    let mut b = b;
    b.sort();
    assert_eq!(a_mirrored, b);
}
