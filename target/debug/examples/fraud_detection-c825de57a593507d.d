/root/repo/target/debug/examples/fraud_detection-c825de57a593507d.d: examples/fraud_detection.rs Cargo.toml

/root/repo/target/debug/examples/libfraud_detection-c825de57a593507d.rmeta: examples/fraud_detection.rs Cargo.toml

examples/fraud_detection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
