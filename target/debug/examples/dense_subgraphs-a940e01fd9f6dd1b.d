/root/repo/target/debug/examples/dense_subgraphs-a940e01fd9f6dd1b.d: examples/dense_subgraphs.rs Cargo.toml

/root/repo/target/debug/examples/libdense_subgraphs-a940e01fd9f6dd1b.rmeta: examples/dense_subgraphs.rs Cargo.toml

examples/dense_subgraphs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
