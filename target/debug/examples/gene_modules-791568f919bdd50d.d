/root/repo/target/debug/examples/gene_modules-791568f919bdd50d.d: examples/gene_modules.rs

/root/repo/target/debug/examples/gene_modules-791568f919bdd50d: examples/gene_modules.rs

examples/gene_modules.rs:
