/root/repo/target/debug/examples/recommendation-26806d63d9ec715d.d: examples/recommendation.rs Cargo.toml

/root/repo/target/debug/examples/librecommendation-26806d63d9ec715d.rmeta: examples/recommendation.rs Cargo.toml

examples/recommendation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
