/root/repo/target/debug/examples/quickstart-404cbce73e91f8cf.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-404cbce73e91f8cf: examples/quickstart.rs

examples/quickstart.rs:
