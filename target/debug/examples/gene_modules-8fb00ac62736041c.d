/root/repo/target/debug/examples/gene_modules-8fb00ac62736041c.d: examples/gene_modules.rs Cargo.toml

/root/repo/target/debug/examples/libgene_modules-8fb00ac62736041c.rmeta: examples/gene_modules.rs Cargo.toml

examples/gene_modules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
