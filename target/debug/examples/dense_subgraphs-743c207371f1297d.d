/root/repo/target/debug/examples/dense_subgraphs-743c207371f1297d.d: examples/dense_subgraphs.rs

/root/repo/target/debug/examples/dense_subgraphs-743c207371f1297d: examples/dense_subgraphs.rs

examples/dense_subgraphs.rs:
