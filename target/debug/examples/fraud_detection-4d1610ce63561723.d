/root/repo/target/debug/examples/fraud_detection-4d1610ce63561723.d: examples/fraud_detection.rs

/root/repo/target/debug/examples/fraud_detection-4d1610ce63561723: examples/fraud_detection.rs

examples/fraud_detection.rs:
