/root/repo/target/debug/examples/recommendation-7af5928a081d1f5c.d: examples/recommendation.rs

/root/repo/target/debug/examples/recommendation-7af5928a081d1f5c: examples/recommendation.rs

examples/recommendation.rs:
