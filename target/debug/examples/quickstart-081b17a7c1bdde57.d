/root/repo/target/debug/examples/quickstart-081b17a7c1bdde57.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-081b17a7c1bdde57.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
