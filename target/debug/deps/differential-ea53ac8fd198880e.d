/root/repo/target/debug/deps/differential-ea53ac8fd198880e.d: crates/mbe/tests/differential.rs

/root/repo/target/debug/deps/differential-ea53ac8fd198880e: crates/mbe/tests/differential.rs

crates/mbe/tests/differential.rs:
