/root/repo/target/debug/deps/setops-0903516a7c973c69.d: crates/setops/src/lib.rs crates/setops/src/bitmap.rs crates/setops/src/gallop.rs crates/setops/src/merge.rs crates/setops/src/multi.rs

/root/repo/target/debug/deps/libsetops-0903516a7c973c69.rlib: crates/setops/src/lib.rs crates/setops/src/bitmap.rs crates/setops/src/gallop.rs crates/setops/src/merge.rs crates/setops/src/multi.rs

/root/repo/target/debug/deps/libsetops-0903516a7c973c69.rmeta: crates/setops/src/lib.rs crates/setops/src/bitmap.rs crates/setops/src/gallop.rs crates/setops/src/merge.rs crates/setops/src/multi.rs

crates/setops/src/lib.rs:
crates/setops/src/bitmap.rs:
crates/setops/src/gallop.rs:
crates/setops/src/merge.rs:
crates/setops/src/multi.rs:
