/root/repo/target/debug/deps/faults-de83c6b883a4e92e.d: crates/mbe/tests/faults.rs

/root/repo/target/debug/deps/faults-de83c6b883a4e92e: crates/mbe/tests/faults.rs

crates/mbe/tests/faults.rs:
