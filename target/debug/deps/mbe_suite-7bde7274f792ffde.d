/root/repo/target/debug/deps/mbe_suite-7bde7274f792ffde.d: src/lib.rs

/root/repo/target/debug/deps/mbe_suite-7bde7274f792ffde: src/lib.rs

src/lib.rs:
