/root/repo/target/debug/deps/api-d27e6207761f91fa.d: crates/mbe/tests/api.rs

/root/repo/target/debug/deps/api-d27e6207761f91fa: crates/mbe/tests/api.rs

crates/mbe/tests/api.rs:
