/root/repo/target/debug/deps/e1_datasets-2b00faf8d22b9d7e.d: crates/bench/benches/e1_datasets.rs Cargo.toml

/root/repo/target/debug/deps/libe1_datasets-2b00faf8d22b9d7e.rmeta: crates/bench/benches/e1_datasets.rs Cargo.toml

crates/bench/benches/e1_datasets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
