/root/repo/target/debug/deps/gen-a73a73d2c86d06e2.d: crates/gen/src/lib.rs crates/gen/src/chung_lu.rs crates/gen/src/er.rs crates/gen/src/planted.rs crates/gen/src/preferential.rs crates/gen/src/presets.rs

/root/repo/target/debug/deps/gen-a73a73d2c86d06e2: crates/gen/src/lib.rs crates/gen/src/chung_lu.rs crates/gen/src/er.rs crates/gen/src/planted.rs crates/gen/src/preferential.rs crates/gen/src/presets.rs

crates/gen/src/lib.rs:
crates/gen/src/chung_lu.rs:
crates/gen/src/er.rs:
crates/gen/src/planted.rs:
crates/gen/src/preferential.rs:
crates/gen/src/presets.rs:
