/root/repo/target/debug/deps/calib-2b9d970a9693014d.d: crates/bench/src/bin/calib.rs Cargo.toml

/root/repo/target/debug/deps/libcalib-2b9d970a9693014d.rmeta: crates/bench/src/bin/calib.rs Cargo.toml

crates/bench/src/bin/calib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
