/root/repo/target/debug/deps/cross_check-2a68a358ce26af40.d: crates/mbe/tests/cross_check.rs

/root/repo/target/debug/deps/cross_check-2a68a358ce26af40: crates/mbe/tests/cross_check.rs

crates/mbe/tests/cross_check.rs:
