/root/repo/target/debug/deps/control-3e348e88a00c841b.d: crates/mbe/tests/control.rs Cargo.toml

/root/repo/target/debug/deps/libcontrol-3e348e88a00c841b.rmeta: crates/mbe/tests/control.rs Cargo.toml

crates/mbe/tests/control.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
