/root/repo/target/debug/deps/bigraph-881411608de46764.d: crates/bigraph/src/lib.rs crates/bigraph/src/builder.rs crates/bigraph/src/butterfly.rs crates/bigraph/src/core.rs crates/bigraph/src/io.rs crates/bigraph/src/order.rs crates/bigraph/src/stats.rs crates/bigraph/src/two_hop.rs Cargo.toml

/root/repo/target/debug/deps/libbigraph-881411608de46764.rmeta: crates/bigraph/src/lib.rs crates/bigraph/src/builder.rs crates/bigraph/src/butterfly.rs crates/bigraph/src/core.rs crates/bigraph/src/io.rs crates/bigraph/src/order.rs crates/bigraph/src/stats.rs crates/bigraph/src/two_hop.rs Cargo.toml

crates/bigraph/src/lib.rs:
crates/bigraph/src/builder.rs:
crates/bigraph/src/butterfly.rs:
crates/bigraph/src/core.rs:
crates/bigraph/src/io.rs:
crates/bigraph/src/order.rs:
crates/bigraph/src/stats.rs:
crates/bigraph/src/two_hop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
