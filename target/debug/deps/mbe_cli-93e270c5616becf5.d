/root/repo/target/debug/deps/mbe_cli-93e270c5616becf5.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/interrupt.rs

/root/repo/target/debug/deps/mbe_cli-93e270c5616becf5: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/interrupt.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/interrupt.rs:
