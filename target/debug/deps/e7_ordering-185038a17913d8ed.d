/root/repo/target/debug/deps/e7_ordering-185038a17913d8ed.d: crates/bench/benches/e7_ordering.rs

/root/repo/target/debug/deps/e7_ordering-185038a17913d8ed: crates/bench/benches/e7_ordering.rs

crates/bench/benches/e7_ordering.rs:
