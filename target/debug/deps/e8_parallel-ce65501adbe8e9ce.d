/root/repo/target/debug/deps/e8_parallel-ce65501adbe8e9ce.d: crates/bench/benches/e8_parallel.rs Cargo.toml

/root/repo/target/debug/deps/libe8_parallel-ce65501adbe8e9ce.rmeta: crates/bench/benches/e8_parallel.rs Cargo.toml

crates/bench/benches/e8_parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
