/root/repo/target/debug/deps/gen-25ce0df3efe3b7fc.d: crates/gen/src/lib.rs crates/gen/src/chung_lu.rs crates/gen/src/er.rs crates/gen/src/planted.rs crates/gen/src/preferential.rs crates/gen/src/presets.rs

/root/repo/target/debug/deps/libgen-25ce0df3efe3b7fc.rlib: crates/gen/src/lib.rs crates/gen/src/chung_lu.rs crates/gen/src/er.rs crates/gen/src/planted.rs crates/gen/src/preferential.rs crates/gen/src/presets.rs

/root/repo/target/debug/deps/libgen-25ce0df3efe3b7fc.rmeta: crates/gen/src/lib.rs crates/gen/src/chung_lu.rs crates/gen/src/er.rs crates/gen/src/planted.rs crates/gen/src/preferential.rs crates/gen/src/presets.rs

crates/gen/src/lib.rs:
crates/gen/src/chung_lu.rs:
crates/gen/src/er.rs:
crates/gen/src/planted.rs:
crates/gen/src/preferential.rs:
crates/gen/src/presets.rs:
