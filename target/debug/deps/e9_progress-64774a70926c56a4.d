/root/repo/target/debug/deps/e9_progress-64774a70926c56a4.d: crates/bench/benches/e9_progress.rs Cargo.toml

/root/repo/target/debug/deps/libe9_progress-64774a70926c56a4.rmeta: crates/bench/benches/e9_progress.rs Cargo.toml

crates/bench/benches/e9_progress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
