/root/repo/target/debug/deps/faults-9ad4e0a16192000e.d: crates/mbe/tests/faults.rs

/root/repo/target/debug/deps/faults-9ad4e0a16192000e: crates/mbe/tests/faults.rs

crates/mbe/tests/faults.rs:
