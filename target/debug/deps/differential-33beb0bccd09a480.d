/root/repo/target/debug/deps/differential-33beb0bccd09a480.d: crates/mbe/tests/differential.rs Cargo.toml

/root/repo/target/debug/deps/libdifferential-33beb0bccd09a480.rmeta: crates/mbe/tests/differential.rs Cargo.toml

crates/mbe/tests/differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
