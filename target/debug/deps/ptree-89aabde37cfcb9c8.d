/root/repo/target/debug/deps/ptree-89aabde37cfcb9c8.d: crates/ptree/src/lib.rs crates/ptree/src/ctrie.rs crates/ptree/src/rtrie.rs

/root/repo/target/debug/deps/ptree-89aabde37cfcb9c8: crates/ptree/src/lib.rs crates/ptree/src/ctrie.rs crates/ptree/src/rtrie.rs

crates/ptree/src/lib.rs:
crates/ptree/src/ctrie.rs:
crates/ptree/src/rtrie.rs:
