/root/repo/target/debug/deps/e3_checks-ac8bf0b767286f74.d: crates/bench/benches/e3_checks.rs Cargo.toml

/root/repo/target/debug/deps/libe3_checks-ac8bf0b767286f74.rmeta: crates/bench/benches/e3_checks.rs Cargo.toml

crates/bench/benches/e3_checks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
