/root/repo/target/debug/deps/e6_memory-005fc181d09640db.d: crates/bench/benches/e6_memory.rs Cargo.toml

/root/repo/target/debug/deps/libe6_memory-005fc181d09640db.rmeta: crates/bench/benches/e6_memory.rs Cargo.toml

crates/bench/benches/e6_memory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
