/root/repo/target/debug/deps/e7_ordering-4589fc58c2506a72.d: crates/bench/benches/e7_ordering.rs Cargo.toml

/root/repo/target/debug/deps/libe7_ordering-4589fc58c2506a72.rmeta: crates/bench/benches/e7_ordering.rs Cargo.toml

crates/bench/benches/e7_ordering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
