/root/repo/target/debug/deps/cross_check-c0a563674b26fd49.d: crates/mbe/tests/cross_check.rs Cargo.toml

/root/repo/target/debug/deps/libcross_check-c0a563674b26fd49.rmeta: crates/mbe/tests/cross_check.rs Cargo.toml

crates/mbe/tests/cross_check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
