/root/repo/target/debug/deps/ptree-2f10c9e4546d452b.d: crates/ptree/src/lib.rs crates/ptree/src/ctrie.rs crates/ptree/src/rtrie.rs

/root/repo/target/debug/deps/libptree-2f10c9e4546d452b.rlib: crates/ptree/src/lib.rs crates/ptree/src/ctrie.rs crates/ptree/src/rtrie.rs

/root/repo/target/debug/deps/libptree-2f10c9e4546d452b.rmeta: crates/ptree/src/lib.rs crates/ptree/src/ctrie.rs crates/ptree/src/rtrie.rs

crates/ptree/src/lib.rs:
crates/ptree/src/ctrie.rs:
crates/ptree/src/rtrie.rs:
