/root/repo/target/debug/deps/e6_memory-32ae9eac1e5d9ae9.d: crates/bench/benches/e6_memory.rs

/root/repo/target/debug/deps/e6_memory-32ae9eac1e5d9ae9: crates/bench/benches/e6_memory.rs

crates/bench/benches/e6_memory.rs:
