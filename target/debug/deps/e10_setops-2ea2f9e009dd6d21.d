/root/repo/target/debug/deps/e10_setops-2ea2f9e009dd6d21.d: crates/bench/benches/e10_setops.rs

/root/repo/target/debug/deps/e10_setops-2ea2f9e009dd6d21: crates/bench/benches/e10_setops.rs

crates/bench/benches/e10_setops.rs:
