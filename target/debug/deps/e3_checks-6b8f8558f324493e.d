/root/repo/target/debug/deps/e3_checks-6b8f8558f324493e.d: crates/bench/benches/e3_checks.rs

/root/repo/target/debug/deps/e3_checks-6b8f8558f324493e: crates/bench/benches/e3_checks.rs

crates/bench/benches/e3_checks.rs:
