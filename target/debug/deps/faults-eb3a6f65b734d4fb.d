/root/repo/target/debug/deps/faults-eb3a6f65b734d4fb.d: crates/mbe/tests/faults.rs Cargo.toml

/root/repo/target/debug/deps/libfaults-eb3a6f65b734d4fb.rmeta: crates/mbe/tests/faults.rs Cargo.toml

crates/mbe/tests/faults.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
