/root/repo/target/debug/deps/bench-c03dea70f0861b70.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bench-c03dea70f0861b70: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
