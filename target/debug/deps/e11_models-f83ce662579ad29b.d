/root/repo/target/debug/deps/e11_models-f83ce662579ad29b.d: crates/bench/benches/e11_models.rs

/root/repo/target/debug/deps/e11_models-f83ce662579ad29b: crates/bench/benches/e11_models.rs

crates/bench/benches/e11_models.rs:
