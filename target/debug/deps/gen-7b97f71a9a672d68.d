/root/repo/target/debug/deps/gen-7b97f71a9a672d68.d: crates/gen/src/lib.rs crates/gen/src/chung_lu.rs crates/gen/src/er.rs crates/gen/src/planted.rs crates/gen/src/preferential.rs crates/gen/src/presets.rs Cargo.toml

/root/repo/target/debug/deps/libgen-7b97f71a9a672d68.rmeta: crates/gen/src/lib.rs crates/gen/src/chung_lu.rs crates/gen/src/er.rs crates/gen/src/planted.rs crates/gen/src/preferential.rs crates/gen/src/presets.rs Cargo.toml

crates/gen/src/lib.rs:
crates/gen/src/chung_lu.rs:
crates/gen/src/er.rs:
crates/gen/src/planted.rs:
crates/gen/src/preferential.rs:
crates/gen/src/presets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
