/root/repo/target/debug/deps/bigraph-7c55108df3b07151.d: crates/bigraph/src/lib.rs crates/bigraph/src/builder.rs crates/bigraph/src/butterfly.rs crates/bigraph/src/core.rs crates/bigraph/src/io.rs crates/bigraph/src/order.rs crates/bigraph/src/stats.rs crates/bigraph/src/two_hop.rs

/root/repo/target/debug/deps/bigraph-7c55108df3b07151: crates/bigraph/src/lib.rs crates/bigraph/src/builder.rs crates/bigraph/src/butterfly.rs crates/bigraph/src/core.rs crates/bigraph/src/io.rs crates/bigraph/src/order.rs crates/bigraph/src/stats.rs crates/bigraph/src/two_hop.rs

crates/bigraph/src/lib.rs:
crates/bigraph/src/builder.rs:
crates/bigraph/src/butterfly.rs:
crates/bigraph/src/core.rs:
crates/bigraph/src/io.rs:
crates/bigraph/src/order.rs:
crates/bigraph/src/stats.rs:
crates/bigraph/src/two_hop.rs:
