/root/repo/target/debug/deps/faults-666beb9d8e852606.d: crates/mbe/tests/faults.rs

/root/repo/target/debug/deps/faults-666beb9d8e852606: crates/mbe/tests/faults.rs

crates/mbe/tests/faults.rs:
