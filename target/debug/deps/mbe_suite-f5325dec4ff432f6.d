/root/repo/target/debug/deps/mbe_suite-f5325dec4ff432f6.d: src/lib.rs

/root/repo/target/debug/deps/libmbe_suite-f5325dec4ff432f6.rlib: src/lib.rs

/root/repo/target/debug/deps/libmbe_suite-f5325dec4ff432f6.rmeta: src/lib.rs

src/lib.rs:
