/root/repo/target/debug/deps/control-fd78c6a29e03eb7b.d: crates/mbe/tests/control.rs

/root/repo/target/debug/deps/control-fd78c6a29e03eb7b: crates/mbe/tests/control.rs

crates/mbe/tests/control.rs:
