/root/repo/target/debug/deps/calib-ce40f94c9161589e.d: crates/bench/src/bin/calib.rs

/root/repo/target/debug/deps/calib-ce40f94c9161589e: crates/bench/src/bin/calib.rs

crates/bench/src/bin/calib.rs:
