/root/repo/target/debug/deps/mbe_cli-9863164a3feb15a5.d: crates/cli/src/main.rs crates/cli/src/args.rs

/root/repo/target/debug/deps/mbe_cli-9863164a3feb15a5: crates/cli/src/main.rs crates/cli/src/args.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
