/root/repo/target/debug/deps/bench-f4241986ba8bcfea.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbench-f4241986ba8bcfea.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
