/root/repo/target/debug/deps/calib-663af975366b34ff.d: crates/bench/src/bin/calib.rs Cargo.toml

/root/repo/target/debug/deps/libcalib-663af975366b34ff.rmeta: crates/bench/src/bin/calib.rs Cargo.toml

crates/bench/src/bin/calib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
