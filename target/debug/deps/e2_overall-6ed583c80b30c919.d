/root/repo/target/debug/deps/e2_overall-6ed583c80b30c919.d: crates/bench/benches/e2_overall.rs Cargo.toml

/root/repo/target/debug/deps/libe2_overall-6ed583c80b30c919.rmeta: crates/bench/benches/e2_overall.rs Cargo.toml

crates/bench/benches/e2_overall.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
