/root/repo/target/debug/deps/e11_models-7da2fb1f6aef2780.d: crates/bench/benches/e11_models.rs Cargo.toml

/root/repo/target/debug/deps/libe11_models-7da2fb1f6aef2780.rmeta: crates/bench/benches/e11_models.rs Cargo.toml

crates/bench/benches/e11_models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
