/root/repo/target/debug/deps/e9_progress-883d50af00385f5b.d: crates/bench/benches/e9_progress.rs

/root/repo/target/debug/deps/e9_progress-883d50af00385f5b: crates/bench/benches/e9_progress.rs

crates/bench/benches/e9_progress.rs:
