/root/repo/target/debug/deps/e2_overall-13f1bdc0a9ebff8b.d: crates/bench/benches/e2_overall.rs

/root/repo/target/debug/deps/e2_overall-13f1bdc0a9ebff8b: crates/bench/benches/e2_overall.rs

crates/bench/benches/e2_overall.rs:
