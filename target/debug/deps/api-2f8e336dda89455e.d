/root/repo/target/debug/deps/api-2f8e336dda89455e.d: crates/mbe/tests/api.rs Cargo.toml

/root/repo/target/debug/deps/libapi-2f8e336dda89455e.rmeta: crates/mbe/tests/api.rs Cargo.toml

crates/mbe/tests/api.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
