/root/repo/target/debug/deps/mbe_cli-0024b69a85e08c45.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/interrupt.rs

/root/repo/target/debug/deps/mbe_cli-0024b69a85e08c45: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/interrupt.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/interrupt.rs:
