/root/repo/target/debug/deps/e10_setops-c896b6e9ce566f7f.d: crates/bench/benches/e10_setops.rs Cargo.toml

/root/repo/target/debug/deps/libe10_setops-c896b6e9ce566f7f.rmeta: crates/bench/benches/e10_setops.rs Cargo.toml

crates/bench/benches/e10_setops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
