/root/repo/target/debug/deps/e5_scale-be5a4fa19a84d31e.d: crates/bench/benches/e5_scale.rs Cargo.toml

/root/repo/target/debug/deps/libe5_scale-be5a4fa19a84d31e.rmeta: crates/bench/benches/e5_scale.rs Cargo.toml

crates/bench/benches/e5_scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
