/root/repo/target/debug/deps/control-bc4c5d102368bcc6.d: crates/mbe/tests/control.rs

/root/repo/target/debug/deps/control-bc4c5d102368bcc6: crates/mbe/tests/control.rs

crates/mbe/tests/control.rs:
