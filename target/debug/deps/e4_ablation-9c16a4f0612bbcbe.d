/root/repo/target/debug/deps/e4_ablation-9c16a4f0612bbcbe.d: crates/bench/benches/e4_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libe4_ablation-9c16a4f0612bbcbe.rmeta: crates/bench/benches/e4_ablation.rs Cargo.toml

crates/bench/benches/e4_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
