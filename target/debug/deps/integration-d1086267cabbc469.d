/root/repo/target/debug/deps/integration-d1086267cabbc469.d: tests/integration.rs Cargo.toml

/root/repo/target/debug/deps/libintegration-d1086267cabbc469.rmeta: tests/integration.rs Cargo.toml

tests/integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
