/root/repo/target/debug/deps/mbe-5d08ed2a9d87e9f3.d: crates/mbe/src/lib.rs crates/mbe/src/baseline.rs crates/mbe/src/checkpoint.rs crates/mbe/src/extremal.rs crates/mbe/src/filtered.rs crates/mbe/src/invariants.rs crates/mbe/src/mbet.rs crates/mbe/src/metrics.rs crates/mbe/src/parallel.rs crates/mbe/src/progress.rs crates/mbe/src/run.rs crates/mbe/src/sink.rs crates/mbe/src/task.rs crates/mbe/src/verify.rs crates/mbe/src/util.rs Cargo.toml

/root/repo/target/debug/deps/libmbe-5d08ed2a9d87e9f3.rmeta: crates/mbe/src/lib.rs crates/mbe/src/baseline.rs crates/mbe/src/checkpoint.rs crates/mbe/src/extremal.rs crates/mbe/src/filtered.rs crates/mbe/src/invariants.rs crates/mbe/src/mbet.rs crates/mbe/src/metrics.rs crates/mbe/src/parallel.rs crates/mbe/src/progress.rs crates/mbe/src/run.rs crates/mbe/src/sink.rs crates/mbe/src/task.rs crates/mbe/src/verify.rs crates/mbe/src/util.rs Cargo.toml

crates/mbe/src/lib.rs:
crates/mbe/src/baseline.rs:
crates/mbe/src/checkpoint.rs:
crates/mbe/src/extremal.rs:
crates/mbe/src/filtered.rs:
crates/mbe/src/invariants.rs:
crates/mbe/src/mbet.rs:
crates/mbe/src/metrics.rs:
crates/mbe/src/parallel.rs:
crates/mbe/src/progress.rs:
crates/mbe/src/run.rs:
crates/mbe/src/sink.rs:
crates/mbe/src/task.rs:
crates/mbe/src/verify.rs:
crates/mbe/src/util.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
