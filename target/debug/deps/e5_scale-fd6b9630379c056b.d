/root/repo/target/debug/deps/e5_scale-fd6b9630379c056b.d: crates/bench/benches/e5_scale.rs

/root/repo/target/debug/deps/e5_scale-fd6b9630379c056b: crates/bench/benches/e5_scale.rs

crates/bench/benches/e5_scale.rs:
