/root/repo/target/debug/deps/e8_parallel-b70cb229cb0c3fe0.d: crates/bench/benches/e8_parallel.rs

/root/repo/target/debug/deps/e8_parallel-b70cb229cb0c3fe0: crates/bench/benches/e8_parallel.rs

crates/bench/benches/e8_parallel.rs:
