/root/repo/target/debug/deps/cross_check-1f4167f19ba57102.d: crates/mbe/tests/cross_check.rs

/root/repo/target/debug/deps/cross_check-1f4167f19ba57102: crates/mbe/tests/cross_check.rs

crates/mbe/tests/cross_check.rs:
