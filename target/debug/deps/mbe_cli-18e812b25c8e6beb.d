/root/repo/target/debug/deps/mbe_cli-18e812b25c8e6beb.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/interrupt.rs Cargo.toml

/root/repo/target/debug/deps/libmbe_cli-18e812b25c8e6beb.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/interrupt.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/interrupt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
