/root/repo/target/debug/deps/ptree-f7e99b7afb71c95f.d: crates/ptree/src/lib.rs crates/ptree/src/ctrie.rs crates/ptree/src/rtrie.rs Cargo.toml

/root/repo/target/debug/deps/libptree-f7e99b7afb71c95f.rmeta: crates/ptree/src/lib.rs crates/ptree/src/ctrie.rs crates/ptree/src/rtrie.rs Cargo.toml

crates/ptree/src/lib.rs:
crates/ptree/src/ctrie.rs:
crates/ptree/src/rtrie.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
