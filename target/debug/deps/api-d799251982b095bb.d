/root/repo/target/debug/deps/api-d799251982b095bb.d: crates/mbe/tests/api.rs

/root/repo/target/debug/deps/api-d799251982b095bb: crates/mbe/tests/api.rs

crates/mbe/tests/api.rs:
