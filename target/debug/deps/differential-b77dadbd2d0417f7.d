/root/repo/target/debug/deps/differential-b77dadbd2d0417f7.d: crates/mbe/tests/differential.rs

/root/repo/target/debug/deps/differential-b77dadbd2d0417f7: crates/mbe/tests/differential.rs

crates/mbe/tests/differential.rs:
