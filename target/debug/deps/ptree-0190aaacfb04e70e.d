/root/repo/target/debug/deps/ptree-0190aaacfb04e70e.d: crates/ptree/src/lib.rs crates/ptree/src/ctrie.rs crates/ptree/src/rtrie.rs Cargo.toml

/root/repo/target/debug/deps/libptree-0190aaacfb04e70e.rmeta: crates/ptree/src/lib.rs crates/ptree/src/ctrie.rs crates/ptree/src/rtrie.rs Cargo.toml

crates/ptree/src/lib.rs:
crates/ptree/src/ctrie.rs:
crates/ptree/src/rtrie.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
