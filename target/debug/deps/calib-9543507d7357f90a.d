/root/repo/target/debug/deps/calib-9543507d7357f90a.d: crates/bench/src/bin/calib.rs

/root/repo/target/debug/deps/calib-9543507d7357f90a: crates/bench/src/bin/calib.rs

crates/bench/src/bin/calib.rs:
