/root/repo/target/debug/deps/e1_datasets-ee89de63c6999e31.d: crates/bench/benches/e1_datasets.rs

/root/repo/target/debug/deps/e1_datasets-ee89de63c6999e31: crates/bench/benches/e1_datasets.rs

crates/bench/benches/e1_datasets.rs:
