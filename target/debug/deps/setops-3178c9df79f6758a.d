/root/repo/target/debug/deps/setops-3178c9df79f6758a.d: crates/setops/src/lib.rs crates/setops/src/bitmap.rs crates/setops/src/gallop.rs crates/setops/src/merge.rs crates/setops/src/multi.rs

/root/repo/target/debug/deps/setops-3178c9df79f6758a: crates/setops/src/lib.rs crates/setops/src/bitmap.rs crates/setops/src/gallop.rs crates/setops/src/merge.rs crates/setops/src/multi.rs

crates/setops/src/lib.rs:
crates/setops/src/bitmap.rs:
crates/setops/src/gallop.rs:
crates/setops/src/merge.rs:
crates/setops/src/multi.rs:
