/root/repo/target/debug/deps/mbe-87231a56bacbeeb3.d: crates/mbe/src/lib.rs crates/mbe/src/baseline.rs crates/mbe/src/checkpoint.rs crates/mbe/src/extremal.rs crates/mbe/src/faults.rs crates/mbe/src/filtered.rs crates/mbe/src/invariants.rs crates/mbe/src/mbet.rs crates/mbe/src/metrics.rs crates/mbe/src/parallel.rs crates/mbe/src/progress.rs crates/mbe/src/run.rs crates/mbe/src/sink.rs crates/mbe/src/task.rs crates/mbe/src/verify.rs crates/mbe/src/util.rs

/root/repo/target/debug/deps/mbe-87231a56bacbeeb3: crates/mbe/src/lib.rs crates/mbe/src/baseline.rs crates/mbe/src/checkpoint.rs crates/mbe/src/extremal.rs crates/mbe/src/faults.rs crates/mbe/src/filtered.rs crates/mbe/src/invariants.rs crates/mbe/src/mbet.rs crates/mbe/src/metrics.rs crates/mbe/src/parallel.rs crates/mbe/src/progress.rs crates/mbe/src/run.rs crates/mbe/src/sink.rs crates/mbe/src/task.rs crates/mbe/src/verify.rs crates/mbe/src/util.rs

crates/mbe/src/lib.rs:
crates/mbe/src/baseline.rs:
crates/mbe/src/checkpoint.rs:
crates/mbe/src/extremal.rs:
crates/mbe/src/faults.rs:
crates/mbe/src/filtered.rs:
crates/mbe/src/invariants.rs:
crates/mbe/src/mbet.rs:
crates/mbe/src/metrics.rs:
crates/mbe/src/parallel.rs:
crates/mbe/src/progress.rs:
crates/mbe/src/run.rs:
crates/mbe/src/sink.rs:
crates/mbe/src/task.rs:
crates/mbe/src/verify.rs:
crates/mbe/src/util.rs:
