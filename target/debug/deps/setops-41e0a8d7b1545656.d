/root/repo/target/debug/deps/setops-41e0a8d7b1545656.d: crates/setops/src/lib.rs crates/setops/src/bitmap.rs crates/setops/src/gallop.rs crates/setops/src/merge.rs crates/setops/src/multi.rs Cargo.toml

/root/repo/target/debug/deps/libsetops-41e0a8d7b1545656.rmeta: crates/setops/src/lib.rs crates/setops/src/bitmap.rs crates/setops/src/gallop.rs crates/setops/src/merge.rs crates/setops/src/multi.rs Cargo.toml

crates/setops/src/lib.rs:
crates/setops/src/bitmap.rs:
crates/setops/src/gallop.rs:
crates/setops/src/merge.rs:
crates/setops/src/multi.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
