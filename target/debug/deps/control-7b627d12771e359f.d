/root/repo/target/debug/deps/control-7b627d12771e359f.d: crates/mbe/tests/control.rs

/root/repo/target/debug/deps/control-7b627d12771e359f: crates/mbe/tests/control.rs

crates/mbe/tests/control.rs:
