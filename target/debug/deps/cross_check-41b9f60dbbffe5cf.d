/root/repo/target/debug/deps/cross_check-41b9f60dbbffe5cf.d: crates/mbe/tests/cross_check.rs

/root/repo/target/debug/deps/cross_check-41b9f60dbbffe5cf: crates/mbe/tests/cross_check.rs

crates/mbe/tests/cross_check.rs:
