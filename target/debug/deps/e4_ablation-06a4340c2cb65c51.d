/root/repo/target/debug/deps/e4_ablation-06a4340c2cb65c51.d: crates/bench/benches/e4_ablation.rs

/root/repo/target/debug/deps/e4_ablation-06a4340c2cb65c51: crates/bench/benches/e4_ablation.rs

crates/bench/benches/e4_ablation.rs:
