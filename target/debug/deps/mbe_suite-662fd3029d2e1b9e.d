/root/repo/target/debug/deps/mbe_suite-662fd3029d2e1b9e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmbe_suite-662fd3029d2e1b9e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
