/root/repo/target/debug/deps/bigraph-d19691e35b0fc3c6.d: crates/bigraph/src/lib.rs crates/bigraph/src/builder.rs crates/bigraph/src/butterfly.rs crates/bigraph/src/core.rs crates/bigraph/src/io.rs crates/bigraph/src/order.rs crates/bigraph/src/stats.rs crates/bigraph/src/two_hop.rs

/root/repo/target/debug/deps/libbigraph-d19691e35b0fc3c6.rlib: crates/bigraph/src/lib.rs crates/bigraph/src/builder.rs crates/bigraph/src/butterfly.rs crates/bigraph/src/core.rs crates/bigraph/src/io.rs crates/bigraph/src/order.rs crates/bigraph/src/stats.rs crates/bigraph/src/two_hop.rs

/root/repo/target/debug/deps/libbigraph-d19691e35b0fc3c6.rmeta: crates/bigraph/src/lib.rs crates/bigraph/src/builder.rs crates/bigraph/src/butterfly.rs crates/bigraph/src/core.rs crates/bigraph/src/io.rs crates/bigraph/src/order.rs crates/bigraph/src/stats.rs crates/bigraph/src/two_hop.rs

crates/bigraph/src/lib.rs:
crates/bigraph/src/builder.rs:
crates/bigraph/src/butterfly.rs:
crates/bigraph/src/core.rs:
crates/bigraph/src/io.rs:
crates/bigraph/src/order.rs:
crates/bigraph/src/stats.rs:
crates/bigraph/src/two_hop.rs:
