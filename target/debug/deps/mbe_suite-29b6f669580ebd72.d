/root/repo/target/debug/deps/mbe_suite-29b6f669580ebd72.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmbe_suite-29b6f669580ebd72.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
