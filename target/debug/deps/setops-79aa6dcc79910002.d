/root/repo/target/debug/deps/setops-79aa6dcc79910002.d: crates/setops/src/lib.rs crates/setops/src/bitmap.rs crates/setops/src/gallop.rs crates/setops/src/merge.rs crates/setops/src/multi.rs Cargo.toml

/root/repo/target/debug/deps/libsetops-79aa6dcc79910002.rmeta: crates/setops/src/lib.rs crates/setops/src/bitmap.rs crates/setops/src/gallop.rs crates/setops/src/merge.rs crates/setops/src/multi.rs Cargo.toml

crates/setops/src/lib.rs:
crates/setops/src/bitmap.rs:
crates/setops/src/gallop.rs:
crates/setops/src/merge.rs:
crates/setops/src/multi.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
