/root/repo/target/debug/deps/gen-95dfc161c1f953f0.d: crates/gen/src/lib.rs crates/gen/src/chung_lu.rs crates/gen/src/er.rs crates/gen/src/planted.rs crates/gen/src/preferential.rs crates/gen/src/presets.rs Cargo.toml

/root/repo/target/debug/deps/libgen-95dfc161c1f953f0.rmeta: crates/gen/src/lib.rs crates/gen/src/chung_lu.rs crates/gen/src/er.rs crates/gen/src/planted.rs crates/gen/src/preferential.rs crates/gen/src/presets.rs Cargo.toml

crates/gen/src/lib.rs:
crates/gen/src/chung_lu.rs:
crates/gen/src/er.rs:
crates/gen/src/planted.rs:
crates/gen/src/preferential.rs:
crates/gen/src/presets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
