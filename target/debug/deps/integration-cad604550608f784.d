/root/repo/target/debug/deps/integration-cad604550608f784.d: tests/integration.rs

/root/repo/target/debug/deps/integration-cad604550608f784: tests/integration.rs

tests/integration.rs:
