/root/repo/target/debug/deps/xtask-b2f2c4c0393c69a4.d: crates/xtask/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libxtask-b2f2c4c0393c69a4.rmeta: crates/xtask/src/main.rs Cargo.toml

crates/xtask/src/main.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/xtask
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
