/root/repo/target/debug/deps/differential-5b958955190cd76b.d: crates/mbe/tests/differential.rs

/root/repo/target/debug/deps/differential-5b958955190cd76b: crates/mbe/tests/differential.rs

crates/mbe/tests/differential.rs:
