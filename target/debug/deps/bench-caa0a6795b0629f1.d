/root/repo/target/debug/deps/bench-caa0a6795b0629f1.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbench-caa0a6795b0629f1.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
