/root/repo/target/debug/deps/api-7ad107b149b9ee7e.d: crates/mbe/tests/api.rs

/root/repo/target/debug/deps/api-7ad107b149b9ee7e: crates/mbe/tests/api.rs

crates/mbe/tests/api.rs:
