/root/repo/target/debug/deps/bench-3b95eac15de0f150.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-3b95eac15de0f150.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-3b95eac15de0f150.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
