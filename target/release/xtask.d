/root/repo/target/release/xtask: /root/repo/crates/xtask/src/main.rs
