/root/repo/target/release/deps/xtask-cc4d217c2ecccc7d.d: crates/xtask/src/main.rs

/root/repo/target/release/deps/xtask-cc4d217c2ecccc7d: crates/xtask/src/main.rs

crates/xtask/src/main.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/xtask
