/root/repo/target/release/deps/mbe_suite-faffa3120c5befba.d: src/lib.rs

/root/repo/target/release/deps/libmbe_suite-faffa3120c5befba.rlib: src/lib.rs

/root/repo/target/release/deps/libmbe_suite-faffa3120c5befba.rmeta: src/lib.rs

src/lib.rs:
