/root/repo/target/release/deps/bench-3edebc2e68fca1d8.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-3edebc2e68fca1d8.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-3edebc2e68fca1d8.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
