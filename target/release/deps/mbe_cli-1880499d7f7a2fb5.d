/root/repo/target/release/deps/mbe_cli-1880499d7f7a2fb5.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/interrupt.rs

/root/repo/target/release/deps/mbe_cli-1880499d7f7a2fb5: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/interrupt.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/interrupt.rs:
