/root/repo/target/release/deps/crossbeam-5686c4967910897a.d: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-5686c4967910897a.rlib: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-5686c4967910897a.rmeta: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:
