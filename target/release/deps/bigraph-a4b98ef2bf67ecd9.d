/root/repo/target/release/deps/bigraph-a4b98ef2bf67ecd9.d: crates/bigraph/src/lib.rs crates/bigraph/src/builder.rs crates/bigraph/src/butterfly.rs crates/bigraph/src/core.rs crates/bigraph/src/io.rs crates/bigraph/src/order.rs crates/bigraph/src/stats.rs crates/bigraph/src/two_hop.rs

/root/repo/target/release/deps/libbigraph-a4b98ef2bf67ecd9.rlib: crates/bigraph/src/lib.rs crates/bigraph/src/builder.rs crates/bigraph/src/butterfly.rs crates/bigraph/src/core.rs crates/bigraph/src/io.rs crates/bigraph/src/order.rs crates/bigraph/src/stats.rs crates/bigraph/src/two_hop.rs

/root/repo/target/release/deps/libbigraph-a4b98ef2bf67ecd9.rmeta: crates/bigraph/src/lib.rs crates/bigraph/src/builder.rs crates/bigraph/src/butterfly.rs crates/bigraph/src/core.rs crates/bigraph/src/io.rs crates/bigraph/src/order.rs crates/bigraph/src/stats.rs crates/bigraph/src/two_hop.rs

crates/bigraph/src/lib.rs:
crates/bigraph/src/builder.rs:
crates/bigraph/src/butterfly.rs:
crates/bigraph/src/core.rs:
crates/bigraph/src/io.rs:
crates/bigraph/src/order.rs:
crates/bigraph/src/stats.rs:
crates/bigraph/src/two_hop.rs:
