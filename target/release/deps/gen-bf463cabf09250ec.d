/root/repo/target/release/deps/gen-bf463cabf09250ec.d: crates/gen/src/lib.rs crates/gen/src/chung_lu.rs crates/gen/src/er.rs crates/gen/src/planted.rs crates/gen/src/preferential.rs crates/gen/src/presets.rs

/root/repo/target/release/deps/libgen-bf463cabf09250ec.rlib: crates/gen/src/lib.rs crates/gen/src/chung_lu.rs crates/gen/src/er.rs crates/gen/src/planted.rs crates/gen/src/preferential.rs crates/gen/src/presets.rs

/root/repo/target/release/deps/libgen-bf463cabf09250ec.rmeta: crates/gen/src/lib.rs crates/gen/src/chung_lu.rs crates/gen/src/er.rs crates/gen/src/planted.rs crates/gen/src/preferential.rs crates/gen/src/presets.rs

crates/gen/src/lib.rs:
crates/gen/src/chung_lu.rs:
crates/gen/src/er.rs:
crates/gen/src/planted.rs:
crates/gen/src/preferential.rs:
crates/gen/src/presets.rs:
