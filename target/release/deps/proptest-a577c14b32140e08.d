/root/repo/target/release/deps/proptest-a577c14b32140e08.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-a577c14b32140e08.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-a577c14b32140e08.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
