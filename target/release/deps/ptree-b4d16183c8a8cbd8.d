/root/repo/target/release/deps/ptree-b4d16183c8a8cbd8.d: crates/ptree/src/lib.rs crates/ptree/src/ctrie.rs crates/ptree/src/rtrie.rs

/root/repo/target/release/deps/libptree-b4d16183c8a8cbd8.rlib: crates/ptree/src/lib.rs crates/ptree/src/ctrie.rs crates/ptree/src/rtrie.rs

/root/repo/target/release/deps/libptree-b4d16183c8a8cbd8.rmeta: crates/ptree/src/lib.rs crates/ptree/src/ctrie.rs crates/ptree/src/rtrie.rs

crates/ptree/src/lib.rs:
crates/ptree/src/ctrie.rs:
crates/ptree/src/rtrie.rs:
