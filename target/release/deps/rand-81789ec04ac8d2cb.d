/root/repo/target/release/deps/rand-81789ec04ac8d2cb.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-81789ec04ac8d2cb.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-81789ec04ac8d2cb.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
