/root/repo/target/release/deps/setops-58eaa55415a9fc5d.d: crates/setops/src/lib.rs crates/setops/src/bitmap.rs crates/setops/src/gallop.rs crates/setops/src/merge.rs crates/setops/src/multi.rs

/root/repo/target/release/deps/libsetops-58eaa55415a9fc5d.rlib: crates/setops/src/lib.rs crates/setops/src/bitmap.rs crates/setops/src/gallop.rs crates/setops/src/merge.rs crates/setops/src/multi.rs

/root/repo/target/release/deps/libsetops-58eaa55415a9fc5d.rmeta: crates/setops/src/lib.rs crates/setops/src/bitmap.rs crates/setops/src/gallop.rs crates/setops/src/merge.rs crates/setops/src/multi.rs

crates/setops/src/lib.rs:
crates/setops/src/bitmap.rs:
crates/setops/src/gallop.rs:
crates/setops/src/merge.rs:
crates/setops/src/multi.rs:
