/root/repo/target/release/deps/criterion-5b66a401d1f5c624.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-5b66a401d1f5c624.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-5b66a401d1f5c624.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
