/root/repo/target/release/deps/calib-419ee4085127e3ea.d: crates/bench/src/bin/calib.rs

/root/repo/target/release/deps/calib-419ee4085127e3ea: crates/bench/src/bin/calib.rs

crates/bench/src/bin/calib.rs:
