/root/repo/target/release/libptree.rlib: /root/repo/crates/ptree/src/ctrie.rs /root/repo/crates/ptree/src/lib.rs /root/repo/crates/ptree/src/rtrie.rs
