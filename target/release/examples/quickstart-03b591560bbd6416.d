/root/repo/target/release/examples/quickstart-03b591560bbd6416.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-03b591560bbd6416: examples/quickstart.rs

examples/quickstart.rs:
