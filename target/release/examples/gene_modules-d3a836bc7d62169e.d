/root/repo/target/release/examples/gene_modules-d3a836bc7d62169e.d: examples/gene_modules.rs

/root/repo/target/release/examples/gene_modules-d3a836bc7d62169e: examples/gene_modules.rs

examples/gene_modules.rs:
