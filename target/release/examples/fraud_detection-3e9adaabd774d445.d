/root/repo/target/release/examples/fraud_detection-3e9adaabd774d445.d: examples/fraud_detection.rs

/root/repo/target/release/examples/fraud_detection-3e9adaabd774d445: examples/fraud_detection.rs

examples/fraud_detection.rs:
