/root/repo/target/release/examples/dense_subgraphs-d1add989da6b1ad3.d: examples/dense_subgraphs.rs

/root/repo/target/release/examples/dense_subgraphs-d1add989da6b1ad3: examples/dense_subgraphs.rs

examples/dense_subgraphs.rs:
