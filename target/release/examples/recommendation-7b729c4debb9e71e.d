/root/repo/target/release/examples/recommendation-7b729c4debb9e71e.d: examples/recommendation.rs

/root/repo/target/release/examples/recommendation-7b729c4debb9e71e: examples/recommendation.rs

examples/recommendation.rs:
