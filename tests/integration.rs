//! Cross-crate integration tests: generators → graph → enumeration →
//! verification, exercised through the `mbe-suite` facade exactly as a
//! downstream application would.

use mbe_suite::prelude::*;
use mbe_suite::{gen, mbe, ptree};

/// End-to-end: generate a calibrated analogue, enumerate it with every
/// engine, and check full agreement plus emitted-set sanity.
#[test]
fn preset_pipeline_all_engines_agree() {
    let preset = gen::presets::by_abbrev("WA").expect("preset exists");
    let g = preset.build_scaled(7, 0.3);
    let mut reference: Option<Vec<Biclique>> = None;
    for alg in Algorithm::all() {
        let report = Enumeration::new(&g).algorithm(alg).collect().unwrap();
        let stats = report.stats;
        let mut got = report.bicliques;
        got.sort();
        assert_eq!(stats.emitted as usize, got.len(), "{alg:?}");
        assert_eq!(
            stats.nodes,
            stats.emitted + stats.nonmaximal,
            "branch accounting must close for {alg:?}"
        );
        match &reference {
            None => reference = Some(got),
            Some(want) => assert_eq!(&got, want, "{alg:?} disagrees"),
        }
    }
    let bicliques = reference.expect("at least one engine ran");
    assert!(!bicliques.is_empty(), "analogue must contain bicliques");
    // Every reported biclique is a real maximal biclique.
    for b in bicliques.iter().take(200) {
        assert!(mbe::verify::is_maximal_biclique(&g, &b.left, &b.right));
    }
}

/// Parallel and serial pipelines agree on a generated workload.
#[test]
fn parallel_pipeline_matches_serial() {
    let preset = gen::presets::by_abbrev("Mti").expect("preset exists");
    let g = preset.build_scaled(3, 0.3);
    let par_report = Enumeration::new(&g).algorithm(Algorithm::Mbet).threads(4).collect().unwrap();
    let mut par = par_report.bicliques;
    par.sort();
    let ser_report = Enumeration::new(&g).algorithm(Algorithm::Mbet).threads(1).collect().unwrap();
    let mut ser = ser_report.bicliques;
    ser.sort();
    assert_eq!(par, ser);
    assert_eq!(par_report.stats.emitted, ser_report.stats.emitted);
}

/// Text round-trip: write a generated graph as an edge list, read it
/// back, and get the same biclique count.
#[test]
fn io_roundtrip_preserves_bicliques() {
    let preset = gen::presets::by_abbrev("YG").expect("preset exists");
    let g = preset.build_scaled(11, 0.2);
    let mut buf = Vec::new();
    bigraph::io::write_edge_list(&g, &mut buf).unwrap();
    let g2 = bigraph::io::read_edge_list(&buf[..]).unwrap();
    assert_eq!(g.num_edges(), g2.num_edges());
    let b1 = Enumeration::new(&g).count().unwrap().count();
    let b2 = Enumeration::new(&g2).count().unwrap().count();
    assert_eq!(b1, b2);
}

/// The R-trie output store holds exactly the emitted family and beats
/// flat storage on prefix-heavy outputs.
#[test]
fn trie_store_integration() {
    let preset = gen::presets::by_abbrev("EE").expect("preset exists");
    let g = preset.build_scaled(5, 0.2);
    let opts = MbeOptions::default();

    let mut sink = mbe::TrieSink::unbounded();
    let stats = Enumeration::new(&g).options(opts.clone()).run(&mut sink).unwrap().stats;
    assert_eq!(sink.duplicates(), 0);
    assert_eq!(sink.trie().len() as u64, stats.emitted);

    // Round-trip through the trie's iteration: every stored R-set is the
    // right side of some collected biclique.
    let collected = Enumeration::new(&g).options(opts.clone()).collect().unwrap().bicliques;
    let rights: std::collections::BTreeSet<Vec<u32>> =
        collected.iter().map(|b| b.right.clone()).collect();
    let mut stored = 0usize;
    sink.trie().for_each_set(|s| {
        assert!(rights.contains(s), "stored {s:?} was never emitted");
        stored += 1;
    });
    assert_eq!(stored, rights.len());

    // Budgeted mode enumerates the same count with bounded node usage.
    let budget = 1 << 10;
    let mut bounded = mbe::TrieSink::with_node_budget(budget);
    let stats2 = Enumeration::new(&g).options(opts).run(&mut bounded).unwrap().stats;
    assert_eq!(stats2.emitted, stats.emitted);
    assert!(bounded.trie().node_count() <= budget + 64);
}

/// Orderings, toggles, thread counts: a compact matrix of configuration
/// combinations over one workload, all agreeing.
#[test]
fn configuration_matrix_agrees() {
    let g = gen::presets::by_abbrev("GH").expect("preset exists").build_scaled(9, 0.15);
    let baseline = Enumeration::new(&g).algorithm(Algorithm::Mbea).count().unwrap().count();
    use mbe_suite::bigraph::order::VertexOrder;
    for order in [VertexOrder::AscendingDegree, VertexOrder::Random(3)] {
        for threads in [1, 3] {
            let report = Enumeration::new(&g)
                .algorithm(Algorithm::Mbet)
                .order(order)
                .threads(threads)
                .count()
                .unwrap();
            assert_eq!(report.count(), baseline, "{order:?} threads={threads}");
        }
    }
}

/// The prefix-tree substrate is usable directly (public-API smoke test).
#[test]
fn ptree_direct_use() {
    let mut trie = ptree::CandidateTrie::new();
    trie.insert(&[1, 4, 6], 100);
    trie.insert(&[1, 4], 101);
    trie.insert(&[1, 4, 6], 102);
    let mut groups = 0;
    trie.for_each_group(|_, _| groups += 1);
    assert_eq!(groups, 2);
    assert!(trie.any_superset(&[4, 6]));

    let mut r = ptree::RTrie::new();
    assert_eq!(r.insert(&[2, 3]), ptree::rtrie::Insert::New);
    assert_eq!(r.insert(&[2, 3]), ptree::rtrie::Insert::Duplicate);
}

/// Generators exposed through the facade produce enumerable graphs.
#[test]
fn generator_facade_smoke() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let g = gen::er::gnm(&mut rng, 40, 30, 200);
    let n = Enumeration::new(&g).count().unwrap().count();
    assert!(n > 0);
    let cfg = gen::chung_lu::ChungLuConfig::new(60, 40, 300);
    let g = gen::chung_lu::generate(&mut rng, &cfg);
    let report = Enumeration::new(&g).count().unwrap();
    assert_eq!(report.count(), report.stats.emitted);
}

/// Property test: on arbitrary small bipartite graphs, every engine —
/// serial and parallel alike — emits exactly the brute-force maximal
/// biclique set.
mod random_graphs {
    use super::*;
    use proptest::prelude::*;

    /// Arbitrary bipartite graph with both sides in `1..=12` and up to 72
    /// (possibly duplicate) random edges.
    fn graph_strategy() -> impl Strategy<Value = BipartiteGraph> {
        ((1u32..13), (1u32..13))
            .prop_flat_map(|(nu, nv)| {
                (Just(nu), Just(nv), proptest::collection::vec((0u32..nu, 0u32..nv), 0..73))
            })
            .prop_map(|(nu, nv, edges)| {
                BipartiteGraph::from_edges(nu, nv, &edges).expect("edges are in range")
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn engines_match_brute_force(g in graph_strategy(), threads in 2usize..5) {
            let mut reference =
                Enumeration::new(&g).algorithm(Algorithm::Mbea).collect().unwrap().bicliques;
            reference.sort();
            // Ground truth for this case; all other runs compare to it.
            mbe::verify::assert_matches_brute_force(&g, &reference);
            for alg in Algorithm::all() {
                let mut serial =
                    Enumeration::new(&g).algorithm(alg).collect().unwrap().bicliques;
                serial.sort();
                prop_assert_eq!(&serial, &reference, "serial {:?}", alg);
                let mut par = Enumeration::new(&g)
                    .algorithm(alg)
                    .threads(threads)
                    .collect()
                    .unwrap()
                    .bicliques;
                par.sort();
                prop_assert_eq!(&par, &reference, "parallel {:?} x{}", alg, threads);
            }
        }
    }
}
