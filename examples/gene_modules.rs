//! Co-expression module discovery in a gene × condition matrix.
//!
//! Run with: `cargo run --release --example gene_modules`
//!
//! The bioinformatics application from the MBEA/iMBEA line of work: a
//! binary expression matrix (gene g is over-expressed under condition c)
//! is a bipartite graph, and a *module* — a set of genes co-expressed
//! under a common set of conditions — is a maximal biclique. This example
//! builds a synthetic expression dataset with embedded modules, compares
//! the serial engines' agreement, and reports module statistics a
//! biologist would look at (size distribution, condition coverage).

use gen::er;
use gen::planted::{plant, BlockSpec, PlantedConfig};
use mbe_suite::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // 1200 genes × 60 experimental conditions with 2% background
    // over-expression noise plus 8 planted modules.
    let noise = er::gnp(&mut rng, 1200, 60, 0.02);
    let modules = PlantedConfig {
        blocks: vec![BlockSpec { a: 20, b: 6, count: 4 }, BlockSpec { a: 12, b: 9, count: 4 }],
        overlap: 0.25,
    };
    let (g, truth) = plant(&mut rng, &noise, &modules);
    println!(
        "expression matrix: {} genes × {} conditions, {} over-expression calls",
        g.num_u(),
        g.num_v(),
        g.num_edges()
    );

    // Enumerate modules with ≥ 4 genes and ≥ 3 conditions.
    let report = Enumeration::new(&g).collect().expect("valid configuration");
    let all = report.bicliques;
    let modules: Vec<&Biclique> =
        all.iter().filter(|b| b.left.len() >= 4 && b.right.len() >= 3).collect();
    println!(
        "{} maximal bicliques total ({:?}); {} qualify as modules",
        all.len(),
        report.stats.elapsed,
        modules.len()
    );

    // Cross-check the engines agree (a one-line sanity check any
    // pipeline should keep around).
    let imbea =
        Enumeration::new(&g).algorithm(Algorithm::Imbea).count().expect("valid configuration");
    assert_eq!(imbea.count(), all.len() as u64, "engines must agree");

    // Module statistics.
    let genes_covered: std::collections::BTreeSet<u32> =
        modules.iter().flat_map(|b| b.left.iter().copied()).collect();
    let max_module = modules.iter().max_by_key(|b| b.edges());
    println!("genes participating in ≥1 module: {}", genes_covered.len());
    if let Some(m) = max_module {
        println!(
            "largest module: {} genes × {} conditions (conditions {:?})",
            m.left.len(),
            m.right.len(),
            m.right
        );
    }

    // Recovery of the planted modules.
    let recovered = truth
        .iter()
        .filter(|t| {
            modules.iter().any(|b| {
                t.us.iter().all(|u| b.left.contains(u)) && t.vs.iter().all(|v| b.right.contains(v))
            })
        })
        .count();
    println!("planted module recovery: {recovered}/{}", truth.len());
    assert_eq!(recovered, truth.len(), "all planted modules must be recovered");

    // Size histogram (genes per module).
    let mut hist = std::collections::BTreeMap::new();
    for m in &modules {
        *hist.entry(m.left.len()).or_insert(0usize) += 1;
    }
    println!("\nmodule size distribution (genes → modules):");
    for (size, n) in hist {
        println!("  {size:>3} genes: {n}");
    }
}
