//! Dense-subgraph mining with the extension APIs.
//!
//! Run with: `cargo run --release --example dense_subgraphs`
//!
//! A market-basket-style analysis on the BookCrossing analogue showing
//! the workflow the size-threshold and extremal APIs exist for:
//!
//! 1. measure graph cohesion (butterfly density);
//! 2. peel to the (α,β)-core to bound the search region;
//! 3. enumerate only the *large* maximal bicliques with pruned search;
//! 4. extract the top-k by edge count with branch-and-bound.

use mbe_suite::{bigraph, mbe};

fn main() {
    let preset = mbe_suite::gen::presets::by_abbrev("BX").expect("preset exists");
    let g = preset.build(2026);
    println!(
        "BookCrossing analogue: {} readers × {} books, {} ratings",
        g.num_u(),
        g.num_v(),
        g.num_edges()
    );

    // 1. Cohesion: butterflies per edge.
    let t = std::time::Instant::now();
    let butterflies = bigraph::butterfly::count_butterflies(&g);
    println!(
        "butterflies: {} ({:.2} per edge) in {:?}",
        butterflies,
        bigraph::butterfly::butterfly_density(&g),
        t.elapsed()
    );

    // 2. Core reduction: only the (4,3)-core can contain a biclique with
    //    |L| ≥ 3 readers and |R| ≥ 4 books.
    let (min_readers, min_books) = (3usize, 4usize);
    let red = bigraph::core::alpha_beta_core(&g, min_books, min_readers);
    println!(
        "({min_books},{min_readers})-core: |U| {} -> {}, |E| {} -> {}",
        g.num_u(),
        red.graph.num_u(),
        g.num_edges(),
        red.graph.num_edges()
    );

    // 3. Size-constrained enumeration (core reduction + pruning happen
    //    inside; ids come back in the original space).
    let t = std::time::Instant::now();
    let thr = mbe::SizeThresholds::new(min_readers, min_books);
    let report = mbe::Enumeration::new(&g).thresholds(thr).collect().expect("valid configuration");
    let groups = report.bicliques;
    println!(
        "{} reading circles with ≥{} readers and ≥{} common books in {:?} \
         ({} branches size-pruned)",
        groups.len(),
        min_readers,
        min_books,
        t.elapsed(),
        report.stats.bound_pruned
    );
    for b in groups.iter().take(3) {
        assert!(mbe::verify::is_maximal_biclique(&g, &b.left, &b.right));
    }

    // 4. The top-5 densest groups overall, found without full enumeration.
    let t = std::time::Instant::now();
    let (top, tstats) = mbe::top_k_by_edges(&g, 5);
    println!(
        "top-5 by edges in {:?} ({} branches bound-pruned):",
        t.elapsed(),
        tstats.bound_pruned
    );
    for b in &top {
        println!("  {} readers × {} books = {} edges", b.left.len(), b.right.len(), b.edges());
    }

    // Cross-check: the best thresholded group can never beat the global
    // top-1 (the global search has no size constraints).
    if let (Some(best_thr), Some(best)) = (groups.iter().map(|b| b.edges()).max(), top.first()) {
        assert!(best.edges() >= best_thr.min(best.edges()));
        println!("\nglobal max biclique: {} edges", best.edges());
    }
}
