//! Fraud-ring detection in an e-commerce purchase graph.
//!
//! Run with: `cargo run --release --example fraud_detection`
//!
//! The motivating application of the MBE papers: sellers buy fake
//! reviews, so a *group of customer accounts* all purchasing the *same
//! set of products* is suspicious. Such a group is exactly a biclique in
//! the customer × product graph, and the rings we want are the maximal
//! ones above a size threshold.
//!
//! This example plants fraud rings into an organic-looking power-law
//! purchase graph, recovers all maximal bicliques with at least
//! `MIN_ACCOUNTS` accounts and `MIN_PRODUCTS` products, and scores the
//! recovery against the planted ground truth.

use gen::chung_lu::{self, ChungLuConfig};
use gen::planted::{plant, BlockSpec, PlantedConfig};
use mbe_suite::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const MIN_ACCOUNTS: usize = 4; // |L| threshold: accounts in a ring
const MIN_PRODUCTS: usize = 4; // |R| threshold: products boosted together

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);

    // Organic background: 4000 customers × 1500 products, power-law.
    let cfg = ChungLuConfig::new(4000, 1500, 12_000);
    let organic = chung_lu::generate(&mut rng, &cfg);

    // Plant 12 fraud rings of 4-6 accounts × 4-7 products, overlapping
    // (real rings share mule accounts).
    let fraud = PlantedConfig {
        blocks: vec![
            BlockSpec { a: 4, b: 4, count: 4 },
            BlockSpec { a: 5, b: 6, count: 4 },
            BlockSpec { a: 6, b: 7, count: 4 },
        ],
        overlap: 0.3,
    };
    let (g, rings) = plant(&mut rng, &organic, &fraud);
    println!(
        "purchase graph: {} customers, {} products, {} purchases ({} rings planted)",
        g.num_u(),
        g.num_v(),
        g.num_edges(),
        rings.len()
    );

    // Enumerate maximal bicliques, keeping only suspicious-sized ones.
    let t = std::time::Instant::now();
    let mut suspicious: Vec<Biclique> = Vec::new();
    let report = {
        let mut sink = mbe::FnSink(|l: &[u32], r: &[u32]| {
            if l.len() >= MIN_ACCOUNTS && r.len() >= MIN_PRODUCTS {
                suspicious.push(Biclique::new(l.to_vec(), r.to_vec()));
            }
            mbe::sink::CONTINUE
        });
        Enumeration::new(&g).run(&mut sink).expect("valid configuration")
    };
    println!(
        "enumerated {} maximal bicliques in {:?}; {} meet the ring thresholds",
        report.stats.emitted,
        t.elapsed(),
        suspicious.len()
    );

    // Score against ground truth: a ring is "recovered" if some reported
    // biclique contains it entirely (maximality can only enlarge rings).
    let mut recovered = 0;
    for ring in &rings {
        let hit = suspicious.iter().any(|b| {
            ring.us.iter().all(|u| b.left.contains(u))
                && ring.vs.iter().all(|v| b.right.contains(v))
        });
        if hit {
            recovered += 1;
        }
    }
    println!("ground truth: {recovered}/{} planted rings recovered", rings.len());

    // Rank the most suspicious groups for an analyst.
    suspicious.sort_by_key(|b| std::cmp::Reverse(b.edges()));
    println!("\ntop suspicious account groups:");
    for b in suspicious.iter().take(5) {
        println!(
            "  {} accounts × {} products  (accounts {:?}…)",
            b.left.len(),
            b.right.len(),
            &b.left[..b.left.len().min(6)]
        );
    }

    assert!(recovered == rings.len(), "all planted rings must be recovered");
}
