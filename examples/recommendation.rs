//! Neighborhood-based recommendation from maximal bicliques.
//!
//! Run with: `cargo run --release --example recommendation`
//!
//! A maximal biclique in a user × item graph is a *taste community*: a
//! group of users who all consumed the same set of items, closed on both
//! sides. For a target user, every community containing them suggests
//! the items its other members consumed that the target hasn't — classic
//! neighborhood collaborative filtering, but with exact closed
//! communities rather than fuzzy similarity.
//!
//! This example also shows the parallel driver and the streaming sink on
//! a benchmark-dataset analogue.

use mbe_suite::prelude::*;

fn main() {
    // The MovieLens analogue from the calibrated preset library.
    let preset = gen::presets::by_abbrev("Mti").expect("preset exists");
    let g = preset.build(99);
    println!(
        "{} analogue: {} users × {} movies, {} ratings",
        preset.name,
        g.num_u(),
        g.num_v(),
        g.num_edges()
    );

    // Enumerate taste communities in parallel (all cores).
    let t = std::time::Instant::now();
    let report = Enumeration::new(&g).threads(0).collect().expect("valid configuration");
    let communities = report.bicliques;
    println!(
        "{} communities in {:?} across {} tasks",
        communities.len(),
        t.elapsed(),
        report.stats.tasks
    );

    // Pick the most active user as the recommendation target.
    let target = (0..g.num_u()).max_by_key(|&u| g.deg_u(u)).expect("non-empty graph");
    let seen: Vec<u32> = g.nbr_u(target).to_vec();
    println!("\ntarget user {target} has rated {} movies", seen.len());

    // A community *containing* the target can only cover movies the
    // target already rated (that's what a biclique is), so recommend from
    // communities of similar users instead: groups whose item set
    // overlaps the target's history but which the target is not part of.
    // Their remaining items are what "users like you" also watched.
    let mut scores: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
    let mut communities_hit = 0u32;
    for c in &communities {
        if c.left.len() < 3 || c.right.len() < 2 || c.left.contains(&target) {
            continue;
        }
        let overlap = c.right.iter().filter(|m| seen.binary_search(m).is_ok()).count();
        if overlap < 2 {
            continue; // not similar enough to the target's taste
        }
        communities_hit += 1;
        for &movie in &c.right {
            if seen.binary_search(&movie).is_err() {
                *scores.entry(movie).or_default() += (overlap * c.left.len()) as f64;
            }
        }
    }
    println!("{communities_hit} similar-taste communities contribute recommendations");

    let mut ranked: Vec<(u32, f64)> = scores.into_iter().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores").then(a.0.cmp(&b.0)));
    println!("\ntop recommendations:");
    if ranked.is_empty() {
        println!("  (target's communities cover no unseen movies — try another seed)");
    }
    for (movie, score) in ranked.iter().take(8) {
        println!("  movie {movie:>5}  score {score:.0}");
    }

    // The same query as a bounded stream: stop after finding 50
    // communities containing the target (cheap exploratory mode).
    let mut found = 0;
    let stream = {
        let mut sink = mbe::FnSink(|l: &[u32], _r: &[u32]| {
            if l.contains(&target) {
                found += 1;
            }
            if found < 50 {
                mbe::sink::CONTINUE
            } else {
                mbe::sink::STOP
            }
        });
        Enumeration::new(&g).run(&mut sink).expect("valid configuration")
    };
    println!(
        "\nstreaming mode stopped after {found} communities containing the target ({})",
        stream.stop.label()
    );
}
