//! Quickstart: enumerate all maximal bicliques of a small bipartite graph.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! The graph is G0 from the MBE literature's running example (5 left
//! vertices, 4 right vertices, 6 maximal bicliques).

use mbe_suite::prelude::*;

fn main() {
    // Build the graph from an edge list: (left, right) pairs.
    let edges = [
        (0, 0),
        (0, 1),
        (0, 2),
        (1, 0),
        (1, 1),
        (1, 2),
        (1, 3),
        (2, 1),
        (3, 1),
        (3, 2),
        (3, 3),
        (4, 3),
    ];
    let g = BipartiteGraph::from_edges(5, 4, &edges).expect("valid edge list");
    println!("graph: {g:?}");

    // Enumerate with the prefix-tree algorithm (MBET), the default.
    let report = Enumeration::new(&g).collect().expect("valid configuration");
    assert!(report.is_complete());

    println!("\nfound {} maximal bicliques in {:?}:", report.count(), report.stats.elapsed);
    for b in &report.bicliques {
        println!("  L = {:?}  R = {:?}  ({} edges)", b.left, b.right, b.edges());
    }

    println!(
        "\nstats: {} branch attempts, {} pruned as non-maximal, {} candidates batched",
        report.stats.nodes, report.stats.nonmaximal, report.stats.batched
    );

    // Streaming consumption without collecting — e.g. find the largest.
    let mut best: Option<(usize, Vec<u32>, Vec<u32>)> = None;
    let mut sink = mbe::FnSink(|l: &[u32], r: &[u32]| {
        let size = l.len() * r.len();
        if best.as_ref().is_none_or(|(s, _, _)| size > *s) {
            best = Some((size, l.to_vec(), r.to_vec()));
        }
        mbe::sink::CONTINUE // keep enumerating
    });
    Enumeration::new(&g).run(&mut sink).expect("valid configuration");
    let (size, l, r) = best.expect("graph has bicliques");
    println!("\nlargest by edge count: L = {l:?}, R = {r:?} ({size} edges)");
}
