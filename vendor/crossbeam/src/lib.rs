//! Offline stand-in for the subset of the `crossbeam 0.8` API this
//! workspace uses (see `vendor/README.md`).
//!
//! The deque module is mutex-based rather than lock-free; it preserves the
//! scheduling discipline the parallel driver depends on (LIFO local pops,
//! FIFO injector/steals) and is correct under arbitrary interleavings,
//! just slower under extreme contention than the real chase-lev deque.

#![forbid(unsafe_code)]

/// Work-stealing deques (`crossbeam-deque` shape).
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The source was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The operation lost a race and may be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// `true` iff the steal yielded nothing and the source was empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }

        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// Returns this steal if decisive, otherwise evaluates `f`.
        pub fn or_else<F: FnOnce() -> Steal<T>>(self, f: F) -> Steal<T> {
            match self {
                Steal::Success(t) => Steal::Success(t),
                Steal::Empty => f(),
                Steal::Retry => match f() {
                    Steal::Empty => Steal::Retry, // a retry was observed
                    other => other,
                },
            }
        }
    }

    impl<T> FromIterator<Steal<T>> for Steal<T> {
        /// First `Success` wins; `Retry` if any attempt must be retried;
        /// `Empty` only if every source was empty.
        fn from_iter<I: IntoIterator<Item = Steal<T>>>(iter: I) -> Steal<T> {
            let mut retry = false;
            for s in iter {
                match s {
                    Steal::Success(t) => return Steal::Success(t),
                    Steal::Retry => retry = true,
                    Steal::Empty => {}
                }
            }
            if retry {
                Steal::Retry
            } else {
                Steal::Empty
            }
        }
    }

    /// A worker-owned deque. Local pops are LIFO; steals take the
    /// opposite (FIFO) end.
    pub struct Worker<T> {
        q: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// A new empty LIFO worker deque.
        pub fn new_lifo() -> Self {
            Worker { q: Arc::new(Mutex::new(VecDeque::new())) }
        }

        /// Pushes a task onto the local end.
        pub fn push(&self, task: T) {
            self.lock().push_back(task);
        }

        /// Pops from the local (most recently pushed) end.
        pub fn pop(&self) -> Option<T> {
            self.lock().pop_back()
        }

        /// `true` iff the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            self.lock().is_empty()
        }

        /// A stealer handle sharing this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer { q: Arc::clone(&self.q) }
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            // Propagating a poisoned lock would deadlock shutdown; the
            // queue holds plain tasks, so the data cannot be torn.
            self.q.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// A handle for stealing tasks from another worker's deque.
    pub struct Stealer<T> {
        q: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        /// Steals one task from the FIFO end.
        pub fn steal(&self) -> Steal<T> {
            let mut q = self.q.lock().unwrap_or_else(|e| e.into_inner());
            match q.pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer { q: Arc::clone(&self.q) }
        }
    }

    /// A global FIFO queue every worker can push to and steal from.
    pub struct Injector<T> {
        q: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// A new empty injector.
        pub fn new() -> Self {
            Injector { q: Mutex::new(VecDeque::new()) }
        }

        /// Enqueues a task.
        pub fn push(&self, task: T) {
            self.lock().push_back(task);
        }

        /// `true` iff the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.lock().is_empty()
        }

        /// Steals a batch of tasks into `dest`, returning one of them
        /// directly.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            const BATCH: usize = 16;
            let mut q = self.lock();
            let first = match q.pop_front() {
                Some(t) => t,
                None => return Steal::Empty,
            };
            let take = q.len().min(BATCH - 1);
            if take > 0 {
                let mut d = dest.lock();
                d.extend(q.drain(..take));
            }
            Steal::Success(first)
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.q.lock().unwrap_or_else(|e| e.into_inner())
        }
    }
}

/// Scoped threads (`crossbeam-utils` shape) over `std::thread::scope`.
pub mod thread {
    use std::io;

    /// A scope handle passed to [`scope`]'s closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// Configures a scoped thread before spawning it.
    pub struct ScopedThreadBuilder<'s, 'scope, 'env> {
        scope: &'s Scope<'scope, 'env>,
        builder: std::thread::Builder,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread with default settings. The closure receives a
        /// unit placeholder where crossbeam passes a nested scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle { inner: self.inner.spawn(move || f(())) }
        }

        /// A builder for configuring name and stack size.
        pub fn builder(&self) -> ScopedThreadBuilder<'_, 'scope, 'env> {
            ScopedThreadBuilder { scope: self, builder: std::thread::Builder::new() }
        }
    }

    impl<'scope, 'env> ScopedThreadBuilder<'_, 'scope, 'env> {
        /// Names the thread.
        pub fn name(mut self, name: String) -> Self {
            self.builder = self.builder.name(name);
            self
        }

        /// Sets the thread's stack size in bytes.
        pub fn stack_size(mut self, size: usize) -> Self {
            self.builder = self.builder.stack_size(size);
            self
        }

        /// Spawns the configured thread. The closure receives a unit
        /// placeholder where crossbeam passes a nested scope.
        pub fn spawn<F, T>(self, f: F) -> io::Result<ScopedJoinHandle<'scope, T>>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.builder.spawn_scoped(self.scope.inner, move || f(()))?;
            Ok(ScopedJoinHandle { inner })
        }
    }

    /// Runs `f` with a scope in which borrowing, non-`'static` threads can
    /// be spawned; all spawned threads are joined before this returns.
    ///
    /// Unlike crossbeam, a panic in an unjoined child propagates out of
    /// `std::thread::scope` instead of being collected into the `Err`
    /// variant; callers here always join explicitly, so the difference is
    /// unobservable.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

/// Small concurrency utilities (`crossbeam-utils` shape).
pub mod utils {
    use std::cell::Cell;

    const SPIN_LIMIT: u32 = 6;
    const YIELD_LIMIT: u32 = 10;

    /// Exponential backoff for spin loops.
    ///
    /// Mirrors `crossbeam_utils::Backoff`: early steps spin with
    /// [`std::hint::spin_loop`], later steps yield to the OS scheduler;
    /// once [`Backoff::is_completed`] reports `true` the caller should
    /// park or re-check its exit condition instead of spinning on.
    pub struct Backoff {
        step: Cell<u32>,
    }

    impl Default for Backoff {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Backoff {
        /// A fresh backoff.
        pub fn new() -> Self {
            Backoff { step: Cell::new(0) }
        }

        /// Resets to the initial (busiest) state after useful work.
        pub fn reset(&self) {
            self.step.set(0);
        }

        /// Backs off in a lock-free loop: always spins, never yields.
        pub fn spin(&self) {
            for _ in 0..1u32 << self.step.get().min(SPIN_LIMIT) {
                std::hint::spin_loop();
            }
            if self.step.get() <= SPIN_LIMIT {
                self.step.set(self.step.get() + 1);
            }
        }

        /// Backs off in a blocking wait loop: spins first, then yields the
        /// thread once the spin budget is exhausted.
        pub fn snooze(&self) {
            if self.step.get() <= SPIN_LIMIT {
                for _ in 0..1u32 << self.step.get() {
                    std::hint::spin_loop();
                }
            } else {
                std::thread::yield_now();
            }
            if self.step.get() <= YIELD_LIMIT {
                self.step.set(self.step.get() + 1);
            }
        }

        /// `true` once backing off further is pointless (time to park).
        pub fn is_completed(&self) -> bool {
            self.step.get() > YIELD_LIMIT
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal, Worker};
    use super::utils::Backoff;

    #[test]
    fn worker_is_lifo_stealer_is_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3), "local end is LIFO");
        assert_eq!(s.steal().success(), Some(1), "steal end is FIFO");
        assert_eq!(w.pop(), Some(2));
        assert!(w.pop().is_none());
        assert!(s.steal().is_empty());
    }

    #[test]
    fn injector_batch_moves_tasks_to_worker() {
        let inj: Injector<u32> = Injector::new();
        for i in 0..40 {
            inj.push(i);
        }
        let w = Worker::new_lifo();
        assert_eq!(inj.steal_batch_and_pop(&w).success(), Some(0));
        assert!(!w.is_empty(), "batch landed in the worker deque");
        assert!(!inj.is_empty(), "injector retains the tail");
        let mut drained = 0;
        while w.pop().is_some() {
            drained += 1;
        }
        assert!(drained > 0 && drained < 40);
    }

    #[test]
    fn steal_collect_prefers_success() {
        let got: Steal<u32> =
            [Steal::Empty, Steal::Retry, Steal::Success(7), Steal::Empty].into_iter().collect();
        assert_eq!(got.success(), Some(7));
        let got: Steal<u32> = [Steal::Empty, Steal::Retry].into_iter().collect();
        assert_eq!(got, Steal::Retry);
        let got: Steal<u32> = [Steal::<u32>::Empty, Steal::Empty].into_iter().collect();
        assert!(got.is_empty());
    }

    #[test]
    fn scoped_threads_join_and_return() {
        let data = [1u64, 2, 3, 4];
        let sum = super::thread::scope(|scope| {
            let mut handles = Vec::new();
            for chunk in data.chunks(2) {
                handles.push(
                    scope
                        .builder()
                        .name("shim-test".into())
                        .stack_size(1 << 20)
                        .spawn(move |_| chunk.iter().sum::<u64>())
                        .expect("spawn"),
                );
            }
            handles.into_iter().map(|h| h.join().expect("join")).sum::<u64>()
        })
        .expect("scope");
        assert_eq!(sum, 10);
    }

    #[test]
    fn backoff_completes_after_enough_snoozes() {
        let b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..32 {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
        b.spin(); // spin never completes the backoff
        assert!(!b.is_completed());
    }
}
