//! Offline stand-in for the subset of the `criterion 0.5` API this
//! workspace uses (see `vendor/README.md`).
//!
//! Each benchmark warms up for `warm_up_time`, then runs timed batches
//! until `measurement_time` elapses (or `sample_size` batches, whichever
//! is later bounded), and prints a single `name ... time/iter` line. No
//! statistics, baselines, or reports — just honest wall-clock medians
//! small enough to eyeball.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// An id rendered as `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { full: format!("{}/{}", function.into(), parameter) }
    }

    /// An id from a bare name.
    pub fn from_name(name: impl Into<String>) -> Self {
        BenchmarkId { full: name.into() }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    budget: Duration,
    min_iters: u64,
}

impl Bencher {
    /// Calls `f` repeatedly, timing every call, until the measurement
    /// budget is spent.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        loop {
            let start = Instant::now();
            black_box(f());
            self.elapsed += start.elapsed();
            self.iters_done += 1;
            if self.elapsed >= self.budget && self.iters_done >= self.min_iters {
                break;
            }
        }
    }

    fn report(&self, label: &str) {
        if self.iters_done == 0 {
            println!("bench {label:<40} (no iterations)");
            return;
        }
        let per = self.elapsed.as_nanos() / self.iters_done as u128;
        println!("bench {label:<40} {per:>12} ns/iter ({} iters)", self.iters_done);
    }
}

/// Top-level benchmark driver and its timing knobs.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Sets the minimum number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement duration per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Applies command-line overrides (no-op in the stand-in).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.into() }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        let label = name.to_string();
        run_one(self, &label, f);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(c: &Criterion, label: &str, mut f: F) {
    // Warm-up pass: same body, throwaway timings.
    let mut warm =
        Bencher { iters_done: 0, elapsed: Duration::ZERO, budget: c.warm_up_time, min_iters: 1 };
    f(&mut warm);
    let mut b = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
        budget: c.measurement_time,
        min_iters: c.sample_size as u64,
    };
    f(&mut b);
    b.report(label);
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark identified by `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, f: F) {
        let label = format!("{}/{}", self.name, id.full);
        run_one(self.c, &label, f);
    }

    /// Runs a benchmark that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let label = format!("{}/{}", self.name, id.full);
        run_one(self.c, &label, |b| f(b, input));
    }

    /// Ends the group (prints nothing in the stand-in).
    pub fn finish(self) {}
}

/// Declares a benchmark group function compatible with criterion's macro
/// forms: `criterion_group!(name, target, ..)` or the
/// `name = ..; config = ..; targets = ..` long form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the `main` function running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_micros(10))
            .measurement_time(Duration::from_micros(50))
    }

    #[test]
    fn bench_function_runs_body() {
        let mut c = quick();
        let mut runs = 0u64;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs >= 3, "at least sample_size iterations");
    }

    #[test]
    fn group_with_input_passes_value() {
        let mut c = quick();
        let mut g = c.benchmark_group("grp");
        let data = vec![1u32, 2, 3];
        let mut seen = 0;
        g.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| seen = d.iter().sum::<u32>())
        });
        g.finish();
        assert_eq!(seen, 6);
    }

    criterion_group! {
        name = shim_group;
        config = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_micros(5))
            .measurement_time(Duration::from_micros(20));
        targets = target_a
    }

    fn target_a(c: &mut Criterion) {
        c.bench_function("macro-target", |b| b.iter(|| black_box(21u64 * 2)));
    }

    #[test]
    fn macro_group_compiles_and_runs() {
        shim_group();
    }
}
