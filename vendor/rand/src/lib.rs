//! Offline stand-in for the subset of the `rand 0.8` API this workspace
//! uses (see `vendor/README.md`).
//!
//! The generator behind [`rngs::StdRng`] is SplitMix64: deterministic,
//! fast, and statistically adequate for the synthetic-workload generators
//! and randomized tests in this repository. Streams differ from the real
//! `rand::StdRng`, so only distributional properties — never exact draws —
//! may be asserted against it.

#![forbid(unsafe_code)]

/// Low-level source of random bits.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// A generator deterministically derived from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Values samplable uniformly from the generator's full bit stream
/// (`rng.gen::<T>()`).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Scalar types uniformly samplable from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`. `lo < hi` required.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u128).wrapping_sub(lo as u128);
                // Modulo bias is < 2^-64 relative for the span sizes this
                // workspace draws; acceptable for workload generation.
                let draw = (rng.next_u64() as u128) % span;
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::standard_sample(rng) * (hi - lo)
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Uniform draw from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_in(rng, self.start, self.end)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw of `T` from the generator's bit stream
    /// (`[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// A uniform draw from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood): full-period, passes BigCrush.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// Distribution sampling (the `rand::distributions` shape).
pub mod distributions {
    use super::Rng;

    /// Types from which values of `T` can be sampled.
    pub trait Distribution<T> {
        /// Draws one value using `rng`.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0usize..3);
            assert!(y < 3);
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_float_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_permutes_and_choose_hits_members() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
