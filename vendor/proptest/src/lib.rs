//! Offline stand-in for the subset of the `proptest 1.x` API this
//! workspace uses (see `vendor/README.md`).
//!
//! Semantics: each `proptest!` test body runs [`ProptestConfig::cases`]
//! times with inputs drawn from its strategies by a deterministic,
//! per-test-name seeded generator. There is **no shrinking** — a failing
//! case panics immediately with the assertion message (the `prop_assert*`
//! macros embed the offending values). Determinism makes failures
//! reproducible without persistence files.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Test-runner plumbing: the deterministic source of randomness.
pub mod test_runner {
    /// Deterministic SplitMix64 stream used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from an arbitrary string (the test name).
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name: stable across runs and platforms.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

use test_runner::TestRng;

/// Per-test configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating random values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then draws from the strategy `f` builds from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Collection strategies (`proptest::collection` shape).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Size bounds for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl SizeRange {
        fn draw(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`; `size` bounds the *attempted*
    /// insertions, so duplicates may make the set smaller (as in real
    /// proptest).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Defines randomized tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running the body once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (
        config = ($cfg:expr);
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let _ = __case;
                $body
            }
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("bounds");
        for _ in 0..500 {
            let x = (3u32..9).sample(&mut rng);
            assert!((3..9).contains(&x));
            let (a, b) = ((0u32..4), (10usize..12)).sample(&mut rng);
            assert!(a < 4 && (10..12).contains(&b));
        }
    }

    #[test]
    fn collections_respect_size_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("sizes");
        for _ in 0..200 {
            let v = crate::collection::vec(0u32..5, 2..7).sample(&mut rng);
            assert!((2..7).contains(&v.len()));
            let s = crate::collection::btree_set(0u32..50, 0..10).sample(&mut rng);
            assert!(s.len() < 10);
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = crate::test_runner::TestRng::from_name("compose");
        let evens = (0u32..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            assert_eq!(evens.sample(&mut rng) % 2, 0);
        }
        let pairs = (1usize..5).prop_flat_map(|n| crate::collection::vec(0u32..3, n..n + 1));
        for _ in 0..100 {
            let v = pairs.sample(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_form_runs_and_sees_args(x in 0u32..100, ys in crate::collection::vec(0u32..10, 0..5)) {
            prop_assert!(x < 100);
            prop_assert_eq!(ys.iter().filter(|&&y| y >= 10).count(), 0);
            prop_assert_ne!(x, 100);
        }
    }

    proptest! {
        #[test]
        fn macro_form_without_config(x in 0i64..10) {
            prop_assert!((0..10).contains(&x));
        }
    }
}
